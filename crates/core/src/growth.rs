//! RP-growth (paper §4.2, Algorithm 4): pattern-growth mining of the RP-tree
//! with `Erec`-based conditional-tree pruning and ts-list push-up.
//!
//! The recursion is allocation-free after warm-up: every temporary the
//! seed implementation allocated per candidate (merged ts-lists, prefix
//! paths, per-rank projections, conditional trees) lives in a reusable
//! [`MineScratch`] arena threaded through the recursion. Candidate scans
//! run as k-way merges over the tree's sorted per-node segments, fused with
//! the `Erec`/`Rec` state machine, so a pruned candidate never materializes
//! its ts-list at all. See DESIGN.md §"Performance architecture".

use std::sync::atomic::{AtomicUsize, Ordering};

use rpm_timeseries::{ItemId, Timestamp, TransactionDb};

use crate::engine::control::{AbortReason, ControlProbe};
use crate::engine::observer::{Observer, Phase, NOOP};
use crate::measures::{IntervalScan, RecurrenceScan, ScanSummary};
use crate::merge::MergeHeap;
use crate::params::{ResolvedParams, RpParams};
use crate::pattern::{canonical_order, RecurringPattern};
use crate::rplist::RpList;
use crate::tree::{NodeIdx, TsTree, ROOT};

/// Counters describing the work a mining run performed — used by the
/// pruning-ablation experiment (DESIGN.md, A1/A2) and surfaced to users who
/// want to reason about cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Candidate items after the RP-list scan.
    pub candidate_items: usize,
    /// Distinct items seen in the database.
    pub scanned_items: usize,
    /// Suffix patterns whose merged ts-list was examined (Algorithm 4
    /// line 2) — the size of the explored search space.
    pub candidates_checked: usize,
    /// Patterns that passed `Erec ≥ minRec` and were recurrence-tested.
    pub recurrence_tests: usize,
    /// Patterns emitted.
    pub patterns_found: usize,
    /// Conditional trees constructed.
    pub conditional_trees: usize,
    /// Item nodes allocated across all trees.
    pub tree_nodes: usize,
    /// Deepest suffix length reached.
    pub max_depth: usize,
    /// Estimated bytes of reusable scratch memory (merge heaps, path
    /// buffers, the conditional-tree pool) held when the run finished.
    /// Scratch capacities only grow, so this is the run's high-water mark.
    /// An execution-strategy counter: the parallel miner reports the sum
    /// over its workers, so it is excluded from
    /// [`MiningStats::normalized`] comparisons.
    pub scratch_bytes_peak: usize,
    /// Work-stealing events in the parallel miner: regions claimed by a
    /// different worker than a static round-robin schedule would have used.
    /// Always 0 for sequential runs; excluded from
    /// [`MiningStats::normalized`] comparisons.
    pub regions_stolen: usize,
}

impl MiningStats {
    /// The algorithmic subset of the counters: everything that must be
    /// identical between the sequential and parallel miners (and across
    /// thread counts). Zeroes the execution-strategy counters
    /// `scratch_bytes_peak` and `regions_stolen`, which legitimately vary
    /// with scheduling.
    pub fn normalized(&self) -> MiningStats {
        MiningStats { scratch_bytes_peak: 0, regions_stolen: 0, ..*self }
    }
}

/// Result of a mining run: the patterns plus work counters.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// Discovered recurring patterns in canonical order (by length, then by
    /// item ids).
    pub patterns: Vec<RecurringPattern>,
    /// Work counters.
    pub stats: MiningStats,
}

impl MiningResult {
    /// Derives the output of mining at a **higher** `minRec` from this
    /// result, without re-mining.
    ///
    /// Sound because the recurring predicate is evaluated per pattern
    /// (`Rec(X) ≥ minRec`, Definition 9) and `per`/`minPS` — which shape
    /// the intervals — are unchanged: the `minRec = k` output is exactly
    /// the `minRec = 1` output filtered to `Rec ≥ k`. Parameter sweeps
    /// over `minRec` (Tables 5/7's columns) therefore need one mining run
    /// per `(per, minPS)` pair. Equivalence is property-tested in
    /// `tests/prop_invariants.rs`.
    pub fn filter_min_rec(&self, min_rec: usize) -> Vec<RecurringPattern> {
        self.patterns.iter().filter(|p| p.recurrence() >= min_rec).cloned().collect()
    }
}

/// Byte offsets of one conditional-pattern-base path inside
/// [`MineScratch`]'s flattened buffers: `path_ranks[rs..re]` is the prefix
/// path (ascending ranks), `path_ts[ts..te]` its sorted ts-list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PathBounds {
    pub(crate) rs: u32,
    pub(crate) re: u32,
    pub(crate) ts: u32,
    pub(crate) te: u32,
}

/// Reusable working memory for a mining run. One instance serves any number
/// of runs (and the whole recursion of each): every buffer is cleared, not
/// dropped, between uses, so after warm-up the hot path performs no heap
/// allocation for candidates, paths, projections or conditional trees —
/// only emitted patterns allocate.
///
/// The buffers obey a stack discipline: everything filled while processing
/// one rank is dead before the recursion into that rank's conditional tree,
/// so a single instance can be threaded through the entire depth-first
/// search. Conditional trees themselves are recycled through a pool
/// ([`TsTree::reset`] keeps their arenas warm).
#[derive(Debug, Default)]
pub struct MineScratch {
    /// K-way merge scratch shared by every candidate scan.
    pub(crate) heap: MergeHeap,
    /// Fused `Erec`/`Rec`/interval scan.
    pub(crate) scan: RecurrenceScan,
    /// Transaction projection buffer (tree construction).
    pub(crate) ranks: Vec<u32>,
    /// Ancestor-walk buffer (deepest rank first, reversed on use).
    pub(crate) walk: Vec<u32>,
    /// Flattened prefix paths of the current conditional-pattern-base.
    pub(crate) path_ranks: Vec<u32>,
    /// Flattened sorted ts-lists of the current base, parallel to paths.
    pub(crate) path_ts: Vec<Timestamp>,
    /// Per-path offsets into `path_ranks` / `path_ts`.
    pub(crate) paths: Vec<PathBounds>,
    /// Subtree segment gathering (parallel region derivation).
    pub(crate) segs: Vec<NodeIdx>,
    /// Per-tail-node `[start, end)` ranges into `segs`.
    pub(crate) seg_bounds: Vec<(u32, u32)>,
    /// DFS stack for subtree traversal.
    pub(crate) stack: Vec<NodeIdx>,
    /// `rank_paths[r]` = indices of base paths containing rank `r`.
    rank_paths: Vec<Vec<u32>>,
    /// Ranks with non-empty `rank_paths`, for cheap cleanup.
    touched: Vec<u32>,
    /// Ranks surviving the conditional `Erec` filter.
    keep: Vec<bool>,
    /// Filtered-path buffer for conditional-tree insertion.
    filtered: Vec<u32>,
    /// Recycled conditional trees (and the global tree between runs).
    pool: Vec<TsTree>,
}

impl MineScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a tree from the pool (arena reset, allocations kept) or
    /// creates one.
    pub(crate) fn take_tree(&mut self, n_ranks: usize) -> TsTree {
        match self.pool.pop() {
            Some(mut t) => {
                t.reset(n_ranks);
                t
            }
            None => TsTree::new(n_ranks),
        }
    }

    /// Returns a tree to the pool for reuse.
    pub(crate) fn recycle(&mut self, tree: TsTree) {
        self.pool.push(tree);
    }

    /// Discards the current conditional-pattern-base.
    pub(crate) fn clear_base(&mut self) {
        self.path_ranks.clear();
        self.path_ts.clear();
        self.paths.clear();
    }

    /// Appends the prefix path and ts-list of tail node `n` to the base
    /// (skipping empty ts-lists and empty prefixes, which cannot contribute
    /// to a conditional tree).
    pub(crate) fn push_tail_path(&mut self, tree: &TsTree, n: NodeIdx) {
        let node = tree.node(n);
        if node.ts.is_empty() {
            return;
        }
        self.walk.clear();
        let mut cur = node.parent;
        while cur != ROOT {
            let (rank, parent) = tree.rank_parent(cur);
            self.walk.push(rank);
            cur = parent;
        }
        if self.walk.is_empty() {
            return;
        }
        let rs = self.path_ranks.len() as u32;
        self.path_ranks.extend(self.walk.iter().rev().copied());
        let ts = self.path_ts.len() as u32;
        self.path_ts.extend_from_slice(&node.ts);
        self.paths.push(PathBounds {
            rs,
            re: self.path_ranks.len() as u32,
            ts,
            te: self.path_ts.len() as u32,
        });
    }

    /// Builds the conditional tree of the base accumulated via
    /// [`MineScratch::push_tail_path`] (or the parallel miner's region
    /// derivation): computes each prefix rank's projected `Erec` with a
    /// k-way merge over the ts-lists of the paths containing it, prunes
    /// ranks below `minRec` (Properties 1–2), and inserts the filtered
    /// paths into a pooled tree. Returns `None` when nothing survives.
    pub(crate) fn build_conditional(&mut self, params: ResolvedParams) -> Option<TsTree> {
        let Self {
            heap,
            path_ranks,
            path_ts,
            paths,
            rank_paths,
            touched,
            keep,
            filtered,
            pool,
            ..
        } = self;
        if paths.is_empty() {
            return None;
        }
        for (pi, pb) in paths.iter().enumerate() {
            for &r in &path_ranks[pb.rs as usize..pb.re as usize] {
                let r = r as usize;
                if rank_paths.len() <= r {
                    rank_paths.resize_with(r + 1, Vec::new);
                    keep.resize(r + 1, false);
                }
                if rank_paths[r].is_empty() {
                    touched.push(r as u32);
                }
                rank_paths[r].push(pi as u32);
            }
        }
        let mut max_kept: Option<u32> = None;
        for &r in touched.iter() {
            let segs = &rank_paths[r as usize];
            // Support bound: `Erec ≤ support / minPS`, so a rank whose whole
            // projection holds fewer than `minPS · minRec` timestamps can
            // never qualify — skip its merge outright.
            let support: usize = segs
                .iter()
                .map(|&pi| {
                    let pb = &paths[pi as usize];
                    (pb.te - pb.ts) as usize
                })
                .sum();
            if support < params.min_ps * params.min_rec {
                continue;
            }
            let mut scan = IntervalScan::new(params.per, params.min_ps);
            let mut proven = false;
            // Only `Erec ≥ minRec` matters here, and the bound is monotone
            // in the scanned prefix — bail out of the merge the moment the
            // rank is proven, instead of draining its whole projection.
            heap.merge_while(
                segs.len() as u32,
                |i| {
                    let pb = &paths[segs[i as usize] as usize];
                    &path_ts[pb.ts as usize..pb.te as usize]
                },
                |t| {
                    scan.feed(t);
                    proven = scan.erec_so_far() >= params.min_rec;
                    !proven
                },
            );
            if proven || scan.finish().erec >= params.min_rec {
                keep[r as usize] = true;
                max_kept = Some(max_kept.map_or(r, |m: u32| m.max(r)));
            }
        }
        let result = max_kept.and_then(|mk| {
            let n_ranks = mk as usize + 1;
            let mut cond = match pool.pop() {
                Some(mut t) => {
                    t.reset(n_ranks);
                    t
                }
                None => TsTree::new(n_ranks),
            };
            for pb in paths.iter() {
                filtered.clear();
                filtered.extend(
                    path_ranks[pb.rs as usize..pb.re as usize]
                        .iter()
                        .copied()
                        .filter(|&r| keep[r as usize]),
                );
                if !filtered.is_empty() {
                    cond.insert_with_ts_list(filtered, &path_ts[pb.ts as usize..pb.te as usize]);
                }
            }
            if cond.is_empty() {
                pool.push(cond);
                None
            } else {
                Some(cond)
            }
        });
        for &r in touched.iter() {
            rank_paths[r as usize].clear();
            keep[r as usize] = false;
        }
        touched.clear();
        result
    }

    /// Estimated bytes held by the scratch arena: buffer capacities plus
    /// the pooled trees. Capacities are monotone within a run, so sampling
    /// at the end of a run yields its high-water mark.
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.heap.capacity_bytes() + self.scan.capacity_bytes();
        bytes += (self.ranks.capacity()
            + self.walk.capacity()
            + self.path_ranks.capacity()
            + self.filtered.capacity()
            + self.touched.capacity())
            * size_of::<u32>();
        bytes += self.path_ts.capacity() * size_of::<Timestamp>();
        bytes += self.paths.capacity() * size_of::<PathBounds>();
        bytes += (self.segs.capacity() + self.stack.capacity()) * size_of::<NodeIdx>();
        bytes += self.seg_bounds.capacity() * size_of::<(u32, u32)>();
        bytes += self.keep.capacity() * size_of::<bool>();
        bytes += self.rank_paths.iter().map(|v| v.capacity() * size_of::<u32>()).sum::<usize>()
            + self.rank_paths.capacity() * size_of::<Vec<u32>>();
        bytes += self.pool.iter().map(TsTree::memory_bytes).sum::<usize>();
        bytes
    }
}

/// The RP-growth miner.
///
/// ```
/// use rpm_core::{RpGrowth, RpParams};
/// use rpm_timeseries::running_example_db;
///
/// let db = running_example_db();
/// let result = RpGrowth::new(RpParams::new(2, 3, 2)).mine(&db);
/// assert_eq!(result.patterns.len(), 8); // Table 2 of the paper
/// ```
#[derive(Debug, Clone)]
pub struct RpGrowth {
    params: RpParams,
}

impl RpGrowth {
    /// Creates a miner with the given constraints.
    pub fn new(params: RpParams) -> Self {
        Self { params }
    }

    /// The miner's parameters.
    pub fn params(&self) -> &RpParams {
        &self.params
    }

    /// Mines all recurring patterns of `db`.
    pub fn mine(&self, db: &TransactionDb) -> MiningResult {
        let params = self.params.resolve(db.len());
        mine_resolved_impl(db, params)
    }
}

pub(crate) fn mine_resolved_impl(db: &TransactionDb, params: ResolvedParams) -> MiningResult {
    let list = RpList::build(db, params);
    mine_with_list_impl(db, &list, params)
}

pub(crate) fn mine_with_list_impl(
    db: &TransactionDb,
    list: &RpList,
    params: ResolvedParams,
) -> MiningResult {
    mine_with_scratch_impl(db, list, params, &mut MineScratch::new())
}

pub(crate) fn mine_with_scratch_impl(
    db: &TransactionDb,
    list: &RpList,
    params: ResolvedParams,
    scratch: &mut MineScratch,
) -> MiningResult {
    let done = AtomicUsize::new(0);
    let mut exec = Exec::unlimited(&done, list.len());
    mine_engine(db, list, params, scratch, &mut exec).0
}

/// The per-run execution context threaded through the recursion: the
/// control probe polled at candidate boundaries plus the observer and the
/// (possibly worker-shared) suffix-progress counter.
pub(crate) struct Exec<'e> {
    pub(crate) probe: ControlProbe<'e>,
    pub(crate) observer: &'e dyn Observer,
    pub(crate) done: &'e AtomicUsize,
    pub(crate) total: usize,
}

impl<'e> Exec<'e> {
    /// An uncontrolled, unobserved context — what the classic entry points
    /// run under.
    pub(crate) fn unlimited(done: &'e AtomicUsize, total: usize) -> Exec<'e> {
        Exec { probe: ControlProbe::unlimited(), observer: &NOOP, done, total }
    }

    /// Reports one completed suffix region and the candidates it explored.
    pub(crate) fn suffix_done(&self, candidates_delta: usize) {
        let d = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.observer.on_suffix_done(d, self.total);
        if candidates_delta > 0 {
            self.observer.on_candidate_batch(candidates_delta);
        }
    }
}

/// The engine-facing pipeline: like the classic full run but interruptible
/// via `exec`'s probe and observable via its hooks. Returns the (possibly
/// partial) result plus the abort reason when a limit tripped. Partial
/// results are always sound: every emitted pattern passed the full
/// recurrence test before the run stopped.
pub(crate) fn mine_engine(
    db: &TransactionDb,
    list: &RpList,
    params: ResolvedParams,
    scratch: &mut MineScratch,
    exec: &mut Exec<'_>,
) -> (MiningResult, Option<AbortReason>) {
    let mut stats = MiningStats {
        candidate_items: list.len(),
        scanned_items: list.scanned_items(),
        ..MiningStats::default()
    };
    if list.is_empty() {
        return (MiningResult { patterns: Vec::new(), stats }, None);
    }

    // Second scan: insert candidate projections (Algorithm 2).
    exec.observer.on_phase(Phase::TreeBuild);
    let mut tree = scratch.take_tree(list.len());
    for t in db.transactions() {
        list.project_into(t.items(), &mut scratch.ranks);
        if !scratch.ranks.is_empty() {
            tree.insert(&scratch.ranks, t.timestamp());
        }
    }
    stats.tree_nodes += tree.node_count();

    exec.observer.on_phase(Phase::Growth);
    let mut patterns = Vec::new();
    let mut suffix: Vec<ItemId> = Vec::new();
    let aborted =
        grow(&mut tree, list, params, &mut suffix, &mut patterns, &mut stats, scratch, exec, true);
    scratch.recycle(tree);
    canonical_order(&mut patterns);
    stats.patterns_found = patterns.len();
    stats.scratch_bytes_peak = scratch.footprint_bytes();
    let reason = if aborted { exec.probe.tripped() } else { None };
    (MiningResult { patterns, stats }, reason)
}

/// Algorithm 4 (`RP-growth`): processes the tree's ranks bottom-up. For each
/// rank, a fused k-way merge over the rank's sorted per-node ts segments
/// computes `Erec`, `Rec` and the interesting intervals in one streaming
/// pass (lines 2–4 + Algorithm 5) without materializing the merged list;
/// surviving suffixes are expanded through a pooled conditional tree
/// (lines 4–7); finally the rank's ts-lists are merged into the parents and
/// the rank removed (line 9).
///
/// `top` marks the call on the top-level (global) tree, whose ranks are the
/// RP-list candidates themselves: their merged singleton ts-lists are
/// exactly what the list's build scan already measured (transactions arrive
/// in ascending timestamp order), so the retained [`RpList::singleton`]
/// summary and intervals are reused instead of re-merging the whole tree.
/// Recursive calls on conditional trees pass `false`.
///
/// Returns `true` when the run was aborted by `exec`'s probe; everything
/// pushed to `out` up to that point is a sound partial result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grow(
    tree: &mut TsTree,
    list: &RpList,
    params: ResolvedParams,
    suffix: &mut Vec<ItemId>,
    out: &mut Vec<RecurringPattern>,
    stats: &mut MiningStats,
    scratch: &mut MineScratch,
    exec: &mut Exec<'_>,
    top: bool,
) -> bool {
    stats.max_depth = stats.max_depth.max(suffix.len() + 1);
    for rank in (0..tree.rank_count() as u32).rev() {
        if exec.probe.poll_with(|| scratch.footprint_bytes()).is_some() {
            return true;
        }
        if tree.links(rank).is_empty() {
            tree.push_up_and_remove(rank);
            if top {
                exec.suffix_done(0);
            }
            continue;
        }
        let candidates_before = stats.candidates_checked;
        stats.candidates_checked += 1;
        let stored = if top { list.singleton(rank) } else { None };
        let summary = match stored {
            Some((rec, _)) => {
                let e = &list.candidates()[rank as usize];
                ScanSummary { support: e.support, runs: 0, interesting: rec, erec: e.erec }
            }
            None => {
                let MineScratch { heap, scan, .. } = &mut *scratch;
                scan.reset(params.per, params.min_ps);
                tree.for_each_ts(rank, heap, |t| scan.feed(t));
                scan.finish()
            }
        };
        if summary.erec >= params.min_rec {
            stats.recurrence_tests += 1;
            suffix.push(list.item_at(rank));
            if summary.interesting >= params.min_rec {
                // Rec(X) ≥ minRec ⇔ Algorithm 5 succeeds; the intervals were
                // collected during the same merge pass (or retained by the
                // RP-list build scan for top-level singletons).
                let intervals = match stored {
                    Some((_, intervals)) => intervals.to_vec(),
                    None => scratch.scan.intervals().to_vec(),
                };
                out.push(RecurringPattern::new(suffix.clone(), summary.support, intervals));
            }
            // Conditional pattern base → conditional tree, keeping only the
            // prefix items whose Erec (within this projection) can still
            // reach minRec (Properties 1–2).
            if let Some(mut cond) = conditional_tree(tree, rank, params, scratch) {
                stats.conditional_trees += 1;
                stats.tree_nodes += cond.node_count();
                let aborted =
                    grow(&mut cond, list, params, suffix, out, stats, scratch, exec, false);
                scratch.recycle(cond);
                if aborted {
                    suffix.pop();
                    return true;
                }
            }
            suffix.pop();
        }
        tree.push_up_and_remove(rank);
        if top {
            exec.suffix_done(stats.candidates_checked - candidates_before);
        }
    }
    false
}

/// Collects `rank`'s conditional-pattern-base into scratch buffers and
/// builds the filtered conditional tree from the pool.
fn conditional_tree(
    tree: &TsTree,
    rank: u32,
    params: ResolvedParams,
    scratch: &mut MineScratch,
) -> Option<TsTree> {
    scratch.clear_base();
    for &n in tree.links(rank) {
        scratch.push_tail_path(tree, n);
    }
    scratch.build_conditional(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RpParams;
    use rpm_timeseries::running_example_db;

    /// Renders mined patterns as `label-string → (sup, rec, intervals)` for
    /// comparison against Table 2.
    fn mined(per: i64, min_ps: usize, min_rec: usize) -> Vec<String> {
        let db = running_example_db();
        let res = RpGrowth::new(RpParams::new(per, min_ps, min_rec)).mine(&db);
        res.patterns.iter().map(|p| p.display(db.items()).to_string()).collect()
    }

    #[test]
    fn running_example_reproduces_table_2() {
        let got = mined(2, 3, 2);
        let expected = vec![
            "{a} [support=8, recurrence=2, {[1,4]:4}, {[11,14]:3}]",
            "{b} [support=7, recurrence=2, {[1,4]:3}, {[11,14]:3}]",
            "{d} [support=6, recurrence=2, {[2,5]:3}, {[9,12]:3}]",
            "{e} [support=6, recurrence=2, {[3,6]:3}, {[10,12]:3}]",
            "{f} [support=6, recurrence=2, {[3,6]:3}, {[10,12]:3}]",
            "{a,b} [support=7, recurrence=2, {[1,4]:3}, {[11,14]:3}]",
            "{c,d} [support=6, recurrence=2, {[2,5]:3}, {[9,12]:3}]",
            "{e,f} [support=6, recurrence=2, {[3,6]:3}, {[10,12]:3}]",
        ];
        assert_eq!(got, expected);
    }

    #[test]
    fn c_is_candidate_but_not_recurring_example_10() {
        // 'c' must be recurrence-tested (Erec(c)=2 ≥ minRec) yet rejected,
        // while its superset 'cd' is emitted — the anti-monotonicity failure
        // the model is built around.
        let db = running_example_db();
        let res = RpGrowth::new(RpParams::new(2, 3, 2)).mine(&db);
        let c = db.items().id("c").unwrap();
        let has_c_alone = res.patterns.iter().any(|p| p.items == vec![c]);
        assert!(!has_c_alone);
        let cd = db.pattern_ids(&["c", "d"]).unwrap();
        assert!(res.patterns.iter().any(|p| p.items == cd));
    }

    #[test]
    fn stats_reflect_pruning() {
        let db = running_example_db();
        let res = RpGrowth::new(RpParams::new(2, 3, 2)).mine(&db);
        let s = res.stats;
        assert_eq!(s.candidate_items, 6);
        assert_eq!(s.scanned_items, 7);
        assert_eq!(s.patterns_found, 8);
        assert!(s.candidates_checked >= 8);
        assert!(s.recurrence_tests <= s.candidates_checked);
        assert!(s.max_depth >= 2);
        assert!(s.conditional_trees >= 3); // at least for f, d, b
        assert!(s.scratch_bytes_peak > 0, "scratch footprint is accounted");
        assert_eq!(s.regions_stolen, 0, "sequential runs never steal");
        assert_eq!(s.normalized().scratch_bytes_peak, 0);
    }

    #[test]
    fn min_rec_one_recovers_all_periodic_interval_patterns() {
        // With minRec=1 every candidate with one interesting interval
        // qualifies; 'c' and 'g' now appear.
        let db = running_example_db();
        let res = RpGrowth::new(RpParams::new(2, 3, 1)).mine(&db);
        let c = db.items().id("c").unwrap();
        let g = db.items().id("g").unwrap();
        assert!(res.patterns.iter().any(|p| p.items == vec![c]));
        assert!(res.patterns.iter().any(|p| p.items == vec![g]));
        assert!(res.patterns.len() > 8);
    }

    #[test]
    fn stricter_parameters_yield_fewer_patterns() {
        let loose = mined(2, 3, 1).len();
        let base = mined(2, 3, 2).len();
        let strict_ps = mined(2, 4, 2).len();
        let strict_rec = mined(2, 3, 3).len();
        assert!(loose >= base);
        assert!(base >= strict_ps);
        assert!(base >= strict_rec);
    }

    #[test]
    fn empty_db_mines_nothing() {
        let db = rpm_timeseries::TransactionDb::builder().build();
        let res = RpGrowth::new(RpParams::new(2, 1, 1)).mine(&db);
        assert!(res.patterns.is_empty());
        assert_eq!(res.stats.candidates_checked, 0);
    }

    #[test]
    fn single_transaction_db() {
        let mut b = rpm_timeseries::TransactionDb::builder();
        b.add_labeled(5, &["x", "y"]);
        let db = b.build();
        let res = RpGrowth::new(RpParams::new(1, 1, 1)).mine(&db);
        // x, y and xy all have one singleton interval [5,5]:1.
        assert_eq!(res.patterns.len(), 3);
        for p in &res.patterns {
            assert_eq!(p.recurrence(), 1);
            assert_eq!(p.intervals[0].start, 5);
            assert_eq!(p.intervals[0].periodic_support, 1);
        }
    }

    #[test]
    fn patterns_are_verifiable_against_raw_db() {
        // Every emitted pattern's support/intervals must match a from-scratch
        // recomputation on the database.
        let db = running_example_db();
        let params = ResolvedParams::new(2, 3, 2);
        let res = mine_resolved_impl(&db, params);
        for p in &res.patterns {
            let ts = db.timestamps_of(&p.items);
            assert_eq!(ts.len(), p.support);
            let intervals =
                crate::measures::get_recurrence(&ts, params).expect("pattern must be recurring");
            assert_eq!(intervals, p.intervals);
        }
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        // One warm scratch across many runs (different databases and
        // parameters) must produce byte-identical output to cold runs —
        // the regression test for stale scratch state.
        let db = running_example_db();
        let mut scratch = MineScratch::new();
        for (per, min_ps, min_rec) in [(2, 3, 2), (1, 1, 1), (2, 3, 1), (3, 2, 2), (2, 3, 2)] {
            let params = ResolvedParams::new(per, min_ps, min_rec);
            let list = RpList::build(&db, params);
            let warm = mine_with_scratch_impl(&db, &list, params, &mut scratch);
            let cold = mine_with_list_impl(&db, &list, params);
            assert_eq!(warm.patterns, cold.patterns, "params {params:?}");
            assert_eq!(
                warm.stats.normalized(),
                cold.stats.normalized(),
                "stats diverged for {params:?}"
            );
        }
    }
}
