//! The RP-list (paper §4.2.1, Algorithm 1): one database scan computing each
//! item's support and estimated maximum recurrence (`Erec`), then pruning
//! non-candidate items and ordering candidates by descending support.

use rpm_timeseries::{ItemId, TransactionDb};

use crate::measures::RecurrenceScan;
use crate::params::ResolvedParams;
use crate::pattern::PeriodicInterval;

/// Per-item aggregates collected by the first database scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpListEntry {
    /// The item.
    pub item: ItemId,
    /// `Sup(item)`.
    pub support: usize,
    /// `Erec(item)` — the pruning bound of §4.1.
    pub erec: usize,
}

/// The candidate-item list of RP-growth.
///
/// Candidates (items with `Erec ≥ minRec`) are stored in **descending
/// support order** (ties broken by ascending item id) — the insertion order
/// of the RP-tree. `rank` maps an `ItemId` to its position in that order.
#[derive(Debug, Clone)]
pub struct RpList {
    candidates: Vec<RpListEntry>,
    rank: Vec<Option<u32>>,
    scanned_items: usize,
    /// Per-candidate (by rank) `Rec` and interesting intervals retained from
    /// the build scan. `None` for lists assembled from bare summaries
    /// ([`RpList::from_summaries`]), whose scan states cannot replay runs.
    singletons: Option<Vec<(usize, Vec<PeriodicInterval>)>>,
}

impl RpList {
    /// Runs Algorithm 1 over `db`.
    ///
    /// The scan keeps, per item, the timestamp of its last appearance (`idl`)
    /// and the periodic-support of its current sub-database (`ps`), folding
    /// `⌊ps/minPS⌋` into `erec` whenever a gap `> per` closes a sub-database
    /// (lines 7–12), with a final fold after the scan (line 15). That state
    /// machine is [`RecurrenceScan`], which also records each candidate's
    /// interesting intervals — transactions arrive in ascending timestamp
    /// order, so this scan sees exactly the merged singleton ts-list the
    /// miner would otherwise re-derive from the tree, and the miners reuse
    /// the retained result instead (see [`crate::growth`]).
    pub fn build(db: &TransactionDb, params: ResolvedParams) -> Self {
        let n_items = db.item_count();
        let mut scans: Vec<Option<RecurrenceScan>> = Vec::new();
        scans.resize_with(n_items, || None);
        for t in db.transactions() {
            let ts = t.timestamp();
            for &item in t.items() {
                scans[item.index()]
                    .get_or_insert_with(|| {
                        let mut s = RecurrenceScan::new();
                        s.reset(params.per, params.min_ps);
                        s
                    })
                    .feed(ts);
            }
        }
        let mut candidates: Vec<RpListEntry> = Vec::new();
        let mut raw: Vec<(usize, usize, Vec<PeriodicInterval>)> = Vec::new();
        for (idx, scan) in scans.iter_mut().enumerate() {
            let Some(scan) = scan else { continue };
            let summary = scan.finish();
            if summary.erec >= params.min_rec {
                candidates.push(RpListEntry {
                    item: ItemId(idx as u32),
                    support: summary.support,
                    erec: summary.erec,
                });
                raw.push((idx, summary.interesting, scan.intervals().to_vec()));
            }
        }
        // Line 16: descending support, deterministic tie-break on item id.
        candidates.sort_by(|a, b| b.support.cmp(&a.support).then_with(|| a.item.cmp(&b.item)));
        let mut rank = vec![None; n_items];
        for (r, e) in candidates.iter().enumerate() {
            rank[e.item.index()] = Some(r as u32);
        }
        let mut singletons: Vec<(usize, Vec<PeriodicInterval>)> =
            vec![(0, Vec::new()); candidates.len()];
        for (idx, rec, intervals) in raw {
            let r = rank[idx].expect("every retained item has a rank") as usize;
            singletons[r] = (rec, intervals);
        }
        Self { candidates, rank, scanned_items: n_items, singletons: Some(singletons) }
    }

    /// Builds an RP-list directly from per-item scan summaries — used by
    /// the incremental miner, whose `IntervalScan` states are maintained as
    /// transactions stream in instead of by a batch database scan.
    pub(crate) fn from_summaries(
        summaries: impl IntoIterator<Item = (ItemId, crate::measures::ScanSummary)>,
        n_items: usize,
        min_rec: usize,
    ) -> Self {
        let mut candidates: Vec<RpListEntry> = summaries
            .into_iter()
            .filter(|(_, s)| s.erec >= min_rec)
            .map(|(item, s)| RpListEntry { item, support: s.support, erec: s.erec })
            .collect();
        candidates.sort_by(|a, b| b.support.cmp(&a.support).then_with(|| a.item.cmp(&b.item)));
        let mut rank = vec![None; n_items];
        for (r, e) in candidates.iter().enumerate() {
            rank[e.item.index()] = Some(r as u32);
        }
        Self { candidates, rank, scanned_items: n_items, singletons: None }
    }

    /// The retained singleton scan of the candidate at `rank`: its `Rec` and
    /// interesting intervals, exactly what a merged scan of `TS^item` yields.
    /// `None` when the list was built without retention
    /// ([`RpList::from_summaries`]).
    ///
    /// # Panics
    /// Panics for out-of-range ranks.
    #[inline]
    pub(crate) fn singleton(&self, rank: u32) -> Option<(usize, &[PeriodicInterval])> {
        self.singletons.as_ref().map(|s| {
            let (rec, intervals) = &s[rank as usize];
            (*rec, intervals.as_slice())
        })
    }

    /// The candidate items in RP-tree insertion order (descending support).
    pub fn candidates(&self) -> &[RpListEntry] {
        &self.candidates
    }

    /// Number of candidate items.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether no item survived pruning.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Number of distinct items seen by the scan (before pruning).
    pub fn scanned_items(&self) -> usize {
        self.scanned_items
    }

    /// The rank of `item` in the candidate order, or `None` if pruned.
    #[inline]
    pub fn rank(&self, item: ItemId) -> Option<u32> {
        self.rank.get(item.index()).copied().flatten()
    }

    /// The item at `rank`.
    ///
    /// # Panics
    /// Panics for out-of-range ranks.
    pub fn item_at(&self, rank: u32) -> ItemId {
        self.candidates[rank as usize].item
    }

    /// Maps a transaction's items to their candidate ranks, sorted ascending
    /// (= the paper's "sort the candidate items in `t` according to the order
    /// of CI", Algorithm 2 line 4). Pruned items are dropped.
    pub fn project(&self, items: &[ItemId]) -> Vec<u32> {
        let mut ranks = Vec::new();
        self.project_into(items, &mut ranks);
        ranks
    }

    /// Allocation-free [`RpList::project`]: clears `out` and fills it with
    /// the ascending candidate ranks of `items`.
    pub fn project_into(&self, items: &[ItemId], out: &mut Vec<u32>) {
        out.clear();
        out.extend(items.iter().filter_map(|&i| self.rank(i)));
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpm_timeseries::running_example_db;

    fn running_list() -> (rpm_timeseries::TransactionDb, RpList) {
        let db = running_example_db();
        let list = RpList::build(&db, ResolvedParams::new(2, 3, 2));
        (db, list)
    }

    #[test]
    fn matches_figure_4_final_state() {
        // Figure 4(e)/(f): supports a:8 b:7 c:7 d:6 e:6 f:6 (g pruned, erec=1);
        // erec values a:2 b:2 c:2 d:2 e:2 f:2.
        let (db, list) = running_list();
        let labels: Vec<(&str, usize, usize)> = list
            .candidates()
            .iter()
            .map(|e| (db.items().label(e.item), e.support, e.erec))
            .collect();
        assert_eq!(
            labels,
            vec![("a", 8, 2), ("b", 7, 2), ("c", 7, 2), ("d", 6, 2), ("e", 6, 2), ("f", 6, 2),]
        );
    }

    #[test]
    fn g_is_pruned_as_in_example_11() {
        let (db, list) = running_list();
        let g = db.items().id("g").unwrap();
        assert_eq!(list.rank(g), None);
        assert_eq!(list.len(), 6);
        assert_eq!(list.scanned_items(), 7);
    }

    #[test]
    fn ranks_follow_support_descending_with_id_tiebreak() {
        let (db, list) = running_list();
        let rank_of = |l: &str| list.rank(db.items().id(l).unwrap()).unwrap();
        assert_eq!(rank_of("a"), 0);
        assert_eq!(rank_of("b"), 1); // b and c tie at 7; b has the smaller id
        assert_eq!(rank_of("c"), 2);
        assert_eq!(rank_of("d"), 3);
        assert!(rank_of("e") < rank_of("f"));
        assert_eq!(list.item_at(0), db.items().id("a").unwrap());
    }

    #[test]
    fn project_filters_and_sorts() {
        let (db, list) = running_list();
        // Transaction 1: {a,b,g} → candidate projection {a,b} (Figure 5a).
        let t1 = db.transaction(0);
        let ranks = list.project(t1.items());
        assert_eq!(ranks, vec![0, 1]);
    }

    #[test]
    fn min_rec_one_keeps_everything_with_occurrences() {
        let db = running_example_db();
        let list = RpList::build(&db, ResolvedParams::new(2, 1, 1));
        assert_eq!(list.len(), 7); // even g qualifies: every run counts
    }

    #[test]
    fn strict_params_prune_all() {
        let db = running_example_db();
        let list = RpList::build(&db, ResolvedParams::new(1, 10, 5));
        assert!(list.is_empty());
    }

    #[test]
    fn empty_db_yields_empty_list() {
        let db = rpm_timeseries::TransactionDb::builder().build();
        let list = RpList::build(&db, ResolvedParams::new(2, 1, 1));
        assert!(list.is_empty());
        assert_eq!(list.scanned_items(), 0);
    }
}
