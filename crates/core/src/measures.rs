//! The measures of the recurring-pattern model (paper Definitions 3–9) and
//! the `Erec` pruning bound (§4.1), implemented as single streaming passes
//! over sorted timestamp lists.

use rpm_timeseries::Timestamp;

use crate::params::ResolvedParams;
use crate::pattern::PeriodicInterval;

/// Splits `TS^X` into its **maximal periodic runs**: maximal subsequences of
/// consecutive timestamps whose gaps are all `≤ per` (Definition 5). Every
/// timestamp belongs to exactly one run; an isolated timestamp forms a
/// singleton run `[ts, ts]` with periodic-support 1.
///
/// `ts` must be sorted ascending (checked in debug builds).
pub fn periodic_intervals(ts: &[Timestamp], per: Timestamp) -> Vec<PeriodicInterval> {
    debug_assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps must be sorted");
    let mut out = Vec::new();
    let mut iter = ts.iter().copied();
    let Some(first) = iter.next() else { return out };
    let mut start = first;
    let mut prev = first;
    let mut ps = 1usize;
    for cur in iter {
        if cur - prev <= per {
            ps += 1;
        } else {
            out.push(PeriodicInterval { start, end: prev, periodic_support: ps });
            start = cur;
            ps = 1;
        }
        prev = cur;
    }
    out.push(PeriodicInterval { start, end: prev, periodic_support: ps });
    out
}

/// The **interesting** periodic-intervals of `TS^X`: maximal runs whose
/// periodic-support reaches `min_ps` (Definition 7).
pub fn interesting_intervals(
    ts: &[Timestamp],
    per: Timestamp,
    min_ps: usize,
) -> Vec<PeriodicInterval> {
    let mut runs = periodic_intervals(ts, per);
    runs.retain(|r| r.periodic_support >= min_ps);
    runs
}

/// `Rec(X)`: the number of interesting periodic-intervals (Definition 8).
pub fn recurrence(ts: &[Timestamp], per: Timestamp, min_ps: usize) -> usize {
    IntervalScan::new(per, min_ps).feed_all(ts).finish().interesting
}

/// `Erec(X) = Σ_i ⌊ps_i / minPS⌋` — the estimated maximum recurrence any
/// superset of `X` can attain (§4.1). `Erec(X) ≥ Rec(X)` (Property 1) and
/// `X ⊆ Y ⇒ Erec(X) ≥ Erec(Y)` (Property 2), so `Erec(X) < minRec` prunes
/// the entire superset lattice of `X`.
pub fn erec(ts: &[Timestamp], per: Timestamp, min_ps: usize) -> usize {
    IntervalScan::new(per, min_ps).feed_all(ts).finish().erec
}

/// Algorithm 5 (`getRecurrence`): scans `TS^X` once, collecting the
/// interesting periodic-intervals, and reports whether `X` is recurring.
/// Returns the intervals when `Rec(X) ≥ min_rec`, `None` otherwise.
pub fn get_recurrence(ts: &[Timestamp], params: ResolvedParams) -> Option<Vec<PeriodicInterval>> {
    debug_assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps must be sorted");
    let mut sub_db: Vec<PeriodicInterval> = Vec::new();
    let mut iter = ts.iter().copied();
    let first = iter.next()?;
    // Line 3–4: first occurrence starts the first sub-database.
    let mut current_ps = 1usize;
    let mut start_ts = first;
    let mut idl = first;
    for ts_cur in iter {
        if ts_cur - idl <= params.per {
            // Line 7: still periodic within the current sub-database.
            current_ps += 1;
        } else {
            // Lines 9–12: close the sub-database, keep it if interesting.
            if current_ps >= params.min_ps {
                sub_db.push(PeriodicInterval {
                    start: start_ts,
                    end: idl,
                    periodic_support: current_ps,
                });
            }
            current_ps = 1;
            start_ts = ts_cur;
        }
        idl = ts_cur;
    }
    // Lines 17–20: flush the final sub-database.
    if current_ps >= params.min_ps {
        sub_db.push(PeriodicInterval { start: start_ts, end: idl, periodic_support: current_ps });
    }
    // Line 21.
    (sub_db.len() >= params.min_rec).then_some(sub_db)
}

/// Aggregates produced by a single pass of [`IntervalScan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanSummary {
    /// `Sup(X)` — number of timestamps fed.
    pub support: usize,
    /// Number of maximal periodic runs.
    pub runs: usize,
    /// Number of interesting runs (`Rec`).
    pub interesting: usize,
    /// `Erec` pruning bound.
    pub erec: usize,
}

/// Streaming computation of support / runs / `Rec` / `Erec` over an ascending
/// timestamp stream — the same state machine Algorithm 1 keeps per item
/// (`idl`, `ps`, `erec`) while scanning the database.
#[derive(Debug, Clone)]
pub struct IntervalScan {
    per: Timestamp,
    min_ps: usize,
    state: Option<ItemState>,
    summary: ScanSummary,
}

#[derive(Debug, Clone, Copy)]
struct ItemState {
    idl: Timestamp,
    ps: usize,
}

impl IntervalScan {
    /// Creates a scanner for the given `per` and `minPS`.
    pub fn new(per: Timestamp, min_ps: usize) -> Self {
        Self { per, min_ps, state: None, summary: ScanSummary::default() }
    }

    /// Feeds the next (ascending) timestamp.
    pub fn feed(&mut self, ts: Timestamp) {
        self.summary.support += 1;
        match self.state {
            None => self.state = Some(ItemState { idl: ts, ps: 1 }),
            Some(st) => {
                debug_assert!(ts >= st.idl, "timestamps must arrive in ascending order");
                let ps = if ts - st.idl <= self.per {
                    st.ps + 1
                } else {
                    self.close_run(st.ps);
                    1
                };
                self.state = Some(ItemState { idl: ts, ps });
            }
        }
    }

    fn close_run(&mut self, ps: usize) {
        self.summary.runs += 1;
        self.summary.erec += ps / self.min_ps;
        if ps >= self.min_ps {
            self.summary.interesting += 1;
        }
    }

    /// Lower bound on the final `erec` given what has been fed so far —
    /// the closed runs' contribution plus the open run's. Monotone
    /// non-decreasing as the scan progresses, so a consumer that only needs
    /// `erec >= minRec` may stop feeding once this reaches `minRec`.
    pub fn erec_so_far(&self) -> usize {
        self.summary.erec + self.state.map_or(0, |st| st.ps / self.min_ps)
    }

    /// Feeds an entire sorted slice.
    pub fn feed_all(mut self, ts: &[Timestamp]) -> Self {
        for &t in ts {
            self.feed(t);
        }
        self
    }

    /// Closes the final run and returns the aggregates (Algorithm 1 line 15).
    pub fn finish(mut self) -> ScanSummary {
        if let Some(st) = self.state.take() {
            self.close_run(st.ps);
        }
        self.summary
    }
}

/// A reusable scanner that fuses Algorithm 5 (`getRecurrence`) into a single
/// streaming pass: besides the [`ScanSummary`] aggregates it **collects the
/// interesting periodic-intervals** as runs close, so the mining hot path
/// can decide emission (`interesting ≥ minRec` ⇔ `getRecurrence` succeeds)
/// and produce the pattern's intervals without ever materializing the merged
/// ts-list. `reset` clears all state but keeps the interval buffer's
/// capacity — one `RecurrenceScan` serves a whole mining run.
#[derive(Debug, Clone)]
pub struct RecurrenceScan {
    per: Timestamp,
    min_ps: usize,
    state: Option<RunState>,
    summary: ScanSummary,
    intervals: Vec<PeriodicInterval>,
}

#[derive(Debug, Clone, Copy)]
struct RunState {
    start: Timestamp,
    idl: Timestamp,
    ps: usize,
}

/// The still-open (not yet gap-closed) periodic run of a scan — the part of
/// the state machine that a snapshot boundary cuts through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRun {
    /// First timestamp of the open run.
    pub start: Timestamp,
    /// Last timestamp fed (`idl` in Algorithm 1).
    pub idl: Timestamp,
    /// Periodic support accumulated by the open run.
    pub ps: usize,
}

/// Resumable boundary state of a [`RecurrenceScan`]: the closed-run
/// aggregates plus the open run. Feeding the post-boundary suffix into a
/// scan resumed from this state is exactly equivalent to feeding the whole
/// stream from scratch — `finish` only ever closes the open run, so a
/// checkpoint taken **before** `finish` loses nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCheckpoint {
    /// Aggregates over the closed runs (plus total support fed).
    pub summary: ScanSummary,
    /// The open run at the boundary, `None` before the first feed.
    pub open: Option<OpenRun>,
}

impl ScanCheckpoint {
    /// The last timestamp fed before the checkpoint, if any. A resumed scan
    /// must only be fed timestamps strictly greater than this — an equal
    /// timestamp is the same incidence observed again (e.g. the snapshot's
    /// boundary transaction rewritten by a same-timestamp merge).
    pub fn last_fed(&self) -> Option<Timestamp> {
        self.open.map(|o| o.idl)
    }
}

impl Default for RecurrenceScan {
    fn default() -> Self {
        Self {
            per: 0,
            min_ps: 1,
            state: None,
            summary: ScanSummary::default(),
            intervals: Vec::new(),
        }
    }
}

impl RecurrenceScan {
    /// Creates an idle scanner; call [`RecurrenceScan::reset`] before feeding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-arms the scanner for a new candidate without releasing buffers.
    pub fn reset(&mut self, per: Timestamp, min_ps: usize) {
        debug_assert!(min_ps >= 1, "minPS is at least 1 by definition");
        self.per = per;
        self.min_ps = min_ps.max(1);
        self.state = None;
        self.summary = ScanSummary::default();
        self.intervals.clear();
    }

    /// Feeds the next (ascending) timestamp.
    #[inline]
    pub fn feed(&mut self, ts: Timestamp) {
        self.summary.support += 1;
        match self.state {
            None => self.state = Some(RunState { start: ts, idl: ts, ps: 1 }),
            Some(st) => {
                debug_assert!(ts >= st.idl, "timestamps must arrive in ascending order");
                if ts - st.idl <= self.per {
                    self.state = Some(RunState { start: st.start, idl: ts, ps: st.ps + 1 });
                } else {
                    self.close_run(st);
                    self.state = Some(RunState { start: ts, idl: ts, ps: 1 });
                }
            }
        }
    }

    fn close_run(&mut self, st: RunState) {
        self.summary.runs += 1;
        self.summary.erec += st.ps / self.min_ps;
        if st.ps >= self.min_ps {
            self.summary.interesting += 1;
            self.intervals.push(PeriodicInterval {
                start: st.start,
                end: st.idl,
                periodic_support: st.ps,
            });
        }
    }

    /// Closes the final run and returns the aggregates. The collected
    /// intervals stay available via [`RecurrenceScan::intervals`] until the
    /// next `reset`.
    pub fn finish(&mut self) -> ScanSummary {
        if let Some(st) = self.state.take() {
            self.close_run(st);
        }
        self.summary
    }

    /// The interesting periodic-intervals collected so far (complete after
    /// [`RecurrenceScan::finish`]). For a scan started by
    /// [`RecurrenceScan::reset`] this is all of them
    /// (`intervals().len() == summary.interesting`); for a scan resumed via
    /// [`RecurrenceScan::resume`] it is only the intervals closed **after**
    /// the checkpoint — the caller owns the prefix.
    pub fn intervals(&self) -> &[PeriodicInterval] {
        &self.intervals
    }

    /// Captures the resumable state of the scan. Must be called **before**
    /// [`RecurrenceScan::finish`] — finishing closes the open run, after
    /// which the state can no longer be continued.
    pub fn checkpoint(&self) -> ScanCheckpoint {
        ScanCheckpoint {
            summary: self.summary,
            open: self.state.map(|st| OpenRun { start: st.start, idl: st.idl, ps: st.ps }),
        }
    }

    /// Re-arms the scanner mid-stream from a [`ScanCheckpoint`], keeping the
    /// interval buffer's capacity. Subsequent feeds continue the checkpointed
    /// state machine; only intervals closing after the checkpoint land in
    /// [`RecurrenceScan::intervals`].
    pub fn resume(&mut self, per: Timestamp, min_ps: usize, at: ScanCheckpoint) {
        self.reset(per, min_ps);
        self.summary = at.summary;
        self.state = at.open.map(|o| RunState { start: o.start, idl: o.idl, ps: o.ps });
    }

    /// Allocated capacity in bytes (for scratch-memory accounting).
    pub fn capacity_bytes(&self) -> usize {
        self.intervals.capacity() * std::mem::size_of::<PeriodicInterval>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TS_AB: &[Timestamp] = &[1, 3, 4, 7, 11, 12, 14];

    #[test]
    fn periodic_intervals_match_paper_example_5() {
        // per=2 ⇒ TS^{ab} splits into {1,3,4}, {7}, {11,12,14}.
        let runs = periodic_intervals(TS_AB, 2);
        assert_eq!(
            runs,
            vec![
                PeriodicInterval { start: 1, end: 4, periodic_support: 3 },
                PeriodicInterval { start: 7, end: 7, periodic_support: 1 },
                PeriodicInterval { start: 11, end: 14, periodic_support: 3 },
            ]
        );
    }

    #[test]
    fn interesting_intervals_match_paper_example_7() {
        // minPS=3 keeps pi1 and pi3, drops pi2.
        let runs = interesting_intervals(TS_AB, 2, 3);
        assert_eq!(runs.len(), 2);
        assert_eq!((runs[0].start, runs[0].end), (1, 4));
        assert_eq!((runs[1].start, runs[1].end), (11, 14));
    }

    #[test]
    fn recurrence_matches_paper_example_8() {
        assert_eq!(recurrence(TS_AB, 2, 3), 2);
    }

    #[test]
    fn erec_matches_paper_example_11() {
        // TS^g = {1,5,6,7,12,14}: runs {1},{5,6,7},{12,14} ⇒ ⌊1/3⌋+⌊3/3⌋+⌊2/3⌋ = 1.
        let ts_g: &[Timestamp] = &[1, 5, 6, 7, 12, 14];
        assert_eq!(erec(ts_g, 2, 3), 1);
    }

    #[test]
    fn erec_upper_bounds_recurrence_property_1() {
        for min_ps in 1..=4 {
            for per in 1..=5 {
                assert!(
                    erec(TS_AB, per, min_ps) >= recurrence(TS_AB, per, min_ps),
                    "violated at per={per} min_ps={min_ps}"
                );
            }
        }
    }

    #[test]
    fn get_recurrence_returns_intervals_when_recurring() {
        let params = ResolvedParams::new(2, 3, 2);
        let ipis = get_recurrence(TS_AB, params).expect("ab is recurring");
        assert_eq!(ipis.len(), 2);
        assert_eq!(ipis[0].periodic_support, 3);
        assert_eq!((ipis[1].start, ipis[1].end), (11, 14));
    }

    #[test]
    fn get_recurrence_rejects_non_recurring() {
        // TS^c = {2,4,5,7,9,10,12} is one long run ⇒ Rec=1 < minRec=2 (Example 10).
        let ts_c: &[Timestamp] = &[2, 4, 5, 7, 9, 10, 12];
        let params = ResolvedParams::new(2, 3, 2);
        assert!(get_recurrence(ts_c, params).is_none());
        // …but with minRec=1 it qualifies with the single interval [2,12].
        let params1 = ResolvedParams::new(2, 3, 1);
        let ipis = get_recurrence(ts_c, params1).unwrap();
        assert_eq!(ipis, vec![PeriodicInterval { start: 2, end: 12, periodic_support: 7 }]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let params = ResolvedParams::new(2, 1, 1);
        assert!(get_recurrence(&[], params).is_none());
        let single = get_recurrence(&[5], params).unwrap();
        assert_eq!(single, vec![PeriodicInterval { start: 5, end: 5, periodic_support: 1 }]);
        assert!(periodic_intervals(&[], 2).is_empty());
        assert_eq!(erec(&[], 2, 1), 0);
        assert_eq!(recurrence(&[], 2, 1), 0);
    }

    #[test]
    fn min_ps_one_counts_every_run() {
        let ts: &[Timestamp] = &[1, 2, 10, 20, 21, 22];
        // per=1 ⇒ runs {1,2},{10},{20,21,22}; minPS=1 ⇒ all interesting.
        assert_eq!(recurrence(ts, 1, 1), 3);
        assert_eq!(erec(ts, 1, 1), 6); // Σ⌊ps/1⌋ = total support
    }

    #[test]
    fn scan_summary_combines_all_measures() {
        let s = IntervalScan::new(2, 3).feed_all(TS_AB).finish();
        assert_eq!(s, ScanSummary { support: 7, runs: 3, interesting: 2, erec: 2 });
    }

    #[test]
    fn streaming_matches_batch_on_incremental_feed() {
        let mut scan = IntervalScan::new(2, 2);
        for &t in TS_AB {
            scan.feed(t);
        }
        let s = scan.finish();
        assert_eq!(s.interesting, recurrence(TS_AB, 2, 2));
        assert_eq!(s.erec, erec(TS_AB, 2, 2));
    }

    #[test]
    fn recurrence_scan_matches_get_recurrence() {
        let mut scan = RecurrenceScan::new();
        for (per, min_ps) in [(2, 3), (1, 1), (3, 2), (2, 1)] {
            scan.reset(per, min_ps);
            for &t in TS_AB {
                scan.feed(t);
            }
            let summary = scan.finish();
            assert_eq!(summary, IntervalScan::new(per, min_ps).feed_all(TS_AB).finish());
            assert_eq!(scan.intervals().len(), summary.interesting);
            assert_eq!(scan.intervals(), interesting_intervals(TS_AB, per, min_ps));
            // Emission decision equals Algorithm 5 for every minRec.
            for min_rec in 1..=4 {
                let params = ResolvedParams::new(per, min_ps, min_rec);
                match get_recurrence(TS_AB, params) {
                    Some(ipis) => {
                        assert!(summary.interesting >= min_rec);
                        assert_eq!(scan.intervals(), ipis);
                    }
                    None => assert!(summary.interesting < min_rec),
                }
            }
        }
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_scan_at_every_split() {
        // Cutting the stream at any boundary and resuming from the
        // checkpoint must reproduce the uninterrupted scan bit for bit —
        // the invariant suffix-resumable delta mining rests on.
        for (per, min_ps) in [(2, 3), (1, 1), (3, 2), (2, 1)] {
            let mut whole = RecurrenceScan::new();
            whole.reset(per, min_ps);
            for &t in TS_AB {
                whole.feed(t);
            }
            let expect = whole.finish();
            for cut in 0..=TS_AB.len() {
                let mut prefix = RecurrenceScan::new();
                prefix.reset(per, min_ps);
                for &t in &TS_AB[..cut] {
                    prefix.feed(t);
                }
                let ck = prefix.checkpoint();
                assert_eq!(ck.last_fed(), TS_AB[..cut].last().copied());
                let mut all = prefix.intervals().to_vec();
                let mut resumed = RecurrenceScan::new();
                resumed.resume(per, min_ps, ck);
                for &t in &TS_AB[cut..] {
                    resumed.feed(t);
                }
                let got = resumed.finish();
                assert_eq!(got, expect, "per={per} min_ps={min_ps} cut={cut}");
                all.extend_from_slice(resumed.intervals());
                assert_eq!(all, interesting_intervals(TS_AB, per, min_ps));
            }
        }
    }

    #[test]
    fn duplicate_timestamps_stay_in_one_run() {
        // Duplicate stamps (gap 0 ≤ per) must never split a run.
        let ts: &[Timestamp] = &[1, 1, 2];
        let runs = periodic_intervals(ts, 1);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].periodic_support, 3);
    }
}
