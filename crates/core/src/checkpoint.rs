//! Suffix-resumable measure checkpoints — the state the delta miner retains
//! so a dirty candidate is re-measured in O(|appended tail|) instead of
//! O(|posting list|).
//!
//! The paper's measures are computed by a single left-to-right scan of
//! `TS^X` ([`RecurrenceScan`]), and appends can only extend the suffix of
//! any occurrence stream, so the scan state at the pre-append boundary —
//! the closed-run aggregates, the open run's `(start, idl, ps)`, the support
//! count — is everything needed to continue the computation without
//! revisiting the prefix ([`ScanCheckpoint`]). [`crate::PatternStore`] keeps
//! one checkpoint per **item** (plus the item's posting-list length at the
//! snapshot, which bounds its dirty tail) and a cache of checkpoints for the
//! multi-item candidates previous delta mines examined. A cache miss is
//! never unsound: [`cooccurrence_ts`] rebuilds the candidate's full
//! timestamp list by intersecting its members' postings and the scan starts
//! from an empty checkpoint.

use rpm_timeseries::{ItemId, Timestamp};

use crate::incremental::IncrementalMiner;
use crate::measures::{RecurrenceScan, ScanCheckpoint, ScanSummary};
use crate::pattern::PeriodicInterval;

/// Per-item measure checkpoint at a [`crate::PatternStore`] snapshot: the
/// Erec/Rec scan state at the pre-append boundary plus the interesting
/// intervals closed so far and the posting-list length, so both the
/// singleton measures and the dirty-tail cost model resume in O(1).
#[derive(Debug, Clone, Default)]
pub(crate) struct ItemCheckpoint {
    /// Resumable scan state (last interval endpoint, running recurrence
    /// accumulators, support count).
    pub ck: ScanCheckpoint,
    /// Interesting intervals closed before the boundary.
    pub intervals: Vec<PeriodicInterval>,
    /// Posting-list length at the snapshot — postings beyond it are the
    /// item's dirty tail.
    pub postings_len: usize,
}

/// Resumable state of one multi-item candidate, cached by
/// [`crate::PatternStore`] across delta mines.
#[derive(Debug, Clone, Default)]
pub(crate) struct PatternCheckpoint {
    pub ck: ScanCheckpoint,
    /// All interesting intervals closed before the boundary.
    pub intervals: Vec<PeriodicInterval>,
}

/// What advancing a checkpointed scan over an appended suffix produced: the
/// finished full-stream measures plus the state to checkpoint for the next
/// delta.
#[derive(Debug, Clone)]
pub(crate) struct ResumeOutcome {
    /// Finished aggregates over the **whole** stream.
    pub summary: ScanSummary,
    /// All interesting intervals of the whole stream, in temporal order.
    pub intervals: Vec<PeriodicInterval>,
    /// Pre-`finish` scan state at the new boundary.
    pub next: ScanCheckpoint,
}

/// Continues a checkpointed scan over `feed` (ascending timestamps) and
/// finishes it. Timestamps `<=` the checkpoint's last fed one are skipped:
/// they are incidences the prefix scan already counted (the snapshot's
/// boundary transaction reappears in the tail window after a same-timestamp
/// merge rewrites it). `prefix_intervals` are the intervals closed before
/// the checkpoint; the outcome splices them ahead of the newly closed ones.
pub(crate) fn advance(
    scan: &mut RecurrenceScan,
    per: Timestamp,
    min_ps: usize,
    prior: ScanCheckpoint,
    prefix_intervals: &[PeriodicInterval],
    feed: impl IntoIterator<Item = Timestamp>,
) -> ResumeOutcome {
    scan.resume(per, min_ps, prior);
    let last = prior.last_fed();
    for ts in feed {
        if last.is_none_or(|l| ts > l) {
            scan.feed(ts);
        }
    }
    let next = scan.checkpoint();
    let summary = scan.finish();
    let mut intervals = Vec::with_capacity(prefix_intervals.len() + scan.intervals().len());
    intervals.extend_from_slice(prefix_intervals);
    intervals.extend_from_slice(scan.intervals());
    ResumeOutcome { summary, intervals, next }
}

/// `TS^X` over the full accumulated stream, rebuilt by intersecting the
/// members' posting lists (smallest list drives, the rest advance by
/// galloping binary search). The checkpoint-miss fallback: exact, but
/// O(min |postings|·|X|·log) instead of O(|tail|).
pub(crate) fn cooccurrence_ts(miner: &IncrementalMiner, items: &[ItemId]) -> Vec<Timestamp> {
    debug_assert!(!items.is_empty());
    let mut lists: Vec<&[u32]> = items.iter().map(|&i| miner.postings(i)).collect();
    lists.sort_by_key(|l| l.len());
    let (driver, rest) = lists.split_first().expect("non-empty item set");
    let mut cursors = vec![0usize; rest.len()];
    let mut out = Vec::new();
    'next: for &tx in *driver {
        for (list, cur) in rest.iter().zip(cursors.iter_mut()) {
            *cur += list[*cur..].partition_point(|&x| x < tx);
            if list.get(*cur) != Some(&tx) {
                continue 'next;
            }
        }
        out.push(miner.db().transaction(tx as usize).timestamp());
    }
    out
}

/// Rebuilds every item's checkpoint from scratch by rescanning its postings
/// — the full-refresh path, O(total incidences). Delta refreshes instead
/// advance only the dirty items' checkpoints via [`advance`].
pub(crate) fn rebuild_item_checkpoints(miner: &IncrementalMiner) -> Vec<ItemCheckpoint> {
    let (per, min_ps) = (miner.params().per, miner.params().min_ps);
    let mut scan = RecurrenceScan::new();
    (0..miner.db().item_count())
        .map(|idx| {
            let item = ItemId(idx as u32);
            scan.reset(per, min_ps);
            for &tx in miner.postings(item) {
                scan.feed(miner.db().transaction(tx as usize).timestamp());
            }
            ItemCheckpoint {
                ck: scan.checkpoint(),
                intervals: scan.intervals().to_vec(),
                postings_len: miner.postings(item).len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ResolvedParams;

    #[test]
    fn cooccurrence_intersection_matches_naive_scan() {
        let mut miner = IncrementalMiner::new(ResolvedParams::new(2, 1, 1));
        let mut rng = rpm_timeseries::prng::Pcg32::seed_from_u64(11);
        let mut ts = 0;
        for _ in 0..120 {
            ts += rng.random_range(1..3i64);
            let labels: Vec<String> =
                (0..4).filter(|_| rng.random_f64() < 0.5).map(|i| format!("i{i}")).collect();
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            if !refs.is_empty() {
                miner.append(ts, &refs).unwrap();
            }
        }
        let ids: Vec<ItemId> =
            (0..4).filter_map(|i| miner.db().items().id(&format!("i{i}"))).collect();
        for a in 0..ids.len() {
            for b in a..ids.len() {
                let set = if a == b { vec![ids[a]] } else { vec![ids[a], ids[b]] };
                let got = cooccurrence_ts(&miner, &set);
                let naive: Vec<Timestamp> = miner
                    .db()
                    .transactions()
                    .iter()
                    .filter(|t| set.iter().all(|i| t.items().contains(i)))
                    .map(|t| t.timestamp())
                    .collect();
                assert_eq!(got, naive, "set {set:?}");
            }
        }
    }

    #[test]
    fn rebuilt_item_checkpoints_agree_with_live_scanners() {
        let mut miner = IncrementalMiner::new(ResolvedParams::new(2, 2, 1));
        for ts in 0..50i64 {
            let mut labels = vec!["a"];
            if ts % 3 == 0 {
                labels.push("b");
            }
            if ts % 11 == 0 {
                labels.push("c");
            }
            miner.append(ts, &labels).unwrap();
        }
        let cks = rebuild_item_checkpoints(&miner);
        assert_eq!(cks.len(), miner.db().item_count());
        for (idx, ck) in cks.iter().enumerate() {
            let item = ItemId(idx as u32);
            // Finishing the checkpointed state must reproduce the live
            // scanner's summary (support, runs, Rec, Erec)…
            let mut scan = RecurrenceScan::new();
            let done = advance(
                &mut scan,
                miner.params().per,
                miner.params().min_ps,
                ck.ck,
                &ck.intervals,
                std::iter::empty(),
            );
            assert_eq!(Some(done.summary), miner.scan_summary(item));
            // …and the postings length is the full list (nothing appended
            // since the rebuild).
            assert_eq!(ck.postings_len, miner.postings(item).len());
            assert_eq!(done.intervals.len(), done.summary.interesting);
        }
    }
}
