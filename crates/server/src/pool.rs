//! The bounded hand-off queue between the acceptor and the worker pool.
//!
//! Backpressure is explicit: [`ConnQueue::push`] refuses when the queue is
//! at capacity and hands the connection back, and the acceptor answers it
//! with `503` instead of letting work pile up invisibly. Shutdown is
//! draining: workers keep popping queued connections after
//! [`ConnQueue::shutdown`] — with the server's cancellation token already
//! fired, each drains as a fast partial response — and only park once the
//! queue is empty.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

use rpm_core::sync::{lock_recover, wait_recover};

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<TcpStream>,
    shutdown: bool,
}

/// A bounded MPMC queue of accepted connections.
#[derive(Debug)]
pub struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    /// A queue admitting at most `capacity` waiting connections (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutdown: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a connection, or returns it when the queue is full or the
    /// server is shutting down — the caller owes the peer a `503`.
    pub fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = lock_recover(&self.state);
        if state.shutdown || state.queue.len() >= self.capacity {
            return Err(stream);
        }
        state.queue.push_back(stream);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available. Returns `None` only when the
    /// queue has shut down **and** every queued connection has been drained.
    pub fn pop(&self) -> Option<TcpStream> {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(stream) = state.queue.pop_front() {
                return Some(stream);
            }
            if state.shutdown {
                return None;
            }
            state = wait_recover(&self.ready, state);
        }
    }

    /// Stops admissions and wakes every parked worker.
    pub fn shutdown(&self) {
        lock_recover(&self.state).shutdown = true;
        self.ready.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        lock_recover(&self.state).shutdown
    }

    /// Number of connections currently waiting.
    #[cfg(test)]
    pub fn depth(&self) -> usize {
        lock_recover(&self.state).queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::Arc;

    /// Connected socket pairs for queue plumbing tests.
    fn socket(listener: &TcpListener) -> TcpStream {
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        drop(client);
        server_side
    }

    #[test]
    fn capacity_is_enforced_and_drained() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let q = ConnQueue::new(2);
        assert!(q.push(socket(&listener)).is_ok());
        assert!(q.push(socket(&listener)).is_ok());
        assert!(q.push(socket(&listener)).is_err(), "third admission refused");
        assert_eq!(q.depth(), 2);
        assert!(q.pop().is_some());
        assert!(q.push(socket(&listener)).is_ok(), "slot freed");
    }

    #[test]
    fn shutdown_refuses_new_but_drains_queued() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let q = ConnQueue::new(4);
        q.push(socket(&listener)).unwrap();
        q.shutdown();
        assert!(q.is_shutdown());
        assert!(q.push(socket(&listener)).is_err(), "no admissions after shutdown");
        assert!(q.pop().is_some(), "queued connection drained");
        assert!(q.pop().is_none(), "then parked workers exit");
    }

    #[test]
    fn shutdown_wakes_blocked_workers() {
        let q = Arc::new(ConnQueue::new(1));
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.pop().is_none())
        };
        // Give the worker time to park, then shut down.
        #[allow(clippy::disallowed_methods)] // test choreography, not request handling
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.shutdown();
        assert!(worker.join().unwrap(), "worker observed clean shutdown");
    }
}
