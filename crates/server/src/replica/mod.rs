//! Replication: WAL shipping from a primary to read replicas.
//!
//! A primary started with `--repl-addr` binds a second TCP listener and
//! streams every journal record it writes — in commit order, in the WAL's
//! own `[len][crc32][payload]` framing — to subscribed followers. A
//! follower started with `--replica-of HOST:PORT` bootstraps from the
//! primary's newest snapshot, replays the seq-filtered WAL tail, then
//! applies the live stream through the same journal-apply path recovery
//! uses, so its incremental miner, pattern store, and result cache stay
//! warm. Followers serve every read route but fence writes with
//! `421 Misdirected Request` + a `Location` pointing at the primary;
//! `POST /v1/admin/promote` flips a caught-up follower into a primary.
//!
//! Divergence is detected eagerly: the follower acknowledges every shipped
//! message with its chained FNV-1a stream fingerprint, and the primary
//! compares it against its own fingerprint at the same seq. A mismatch
//! bumps the `repl.divergences` counter and force-resyncs the follower
//! (drop the session; the follower reconnects and re-bootstraps from the
//! snapshot). Heartbeats carry the primary's per-dataset seqs so the
//! follower can measure its lag; `3×` the heartbeat interval of silence
//! counts as a miss and triggers the same resync.
//!
//! The module is serving-layer code: panic-free, no raw clock reads
//! (pacing comes from `recv_timeout` and socket timeouts), and no socket
//! IO while a lock is held — catch-up collects snapshot + tail bytes under
//! the dataset read lock, drops it, then writes to the wire.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

pub(crate) mod follower;
pub(crate) mod primary;
pub(crate) mod proto;

/// Interval between primary heartbeats on an idle stream, in milliseconds.
/// A follower that hears nothing for `3×` this long declares a heartbeat
/// miss and resyncs.
pub const REPL_HEARTBEAT_MILLIS: u64 = 500;

/// Default readiness threshold: a replica reports ready on
/// `GET /v1/readyz` once it has finished bootstrap and its worst
/// per-dataset seq lag is at most this many records (`--max-lag`
/// overrides it).
pub const REPL_MAX_LAG_SEQS: u64 = 64;

/// Counters for the `repl` group of `GET /v1/metrics`. All monotonic
/// unless noted; primary-side and follower-side counters live in the same
/// group because a promoted node is both over its lifetime.
#[derive(Debug, Default)]
pub struct ReplMetrics {
    /// Currently connected followers (gauge; primary side).
    pub followers: AtomicU64,
    /// Journal records shipped to followers (counted per follower).
    pub records_shipped: AtomicU64,
    /// Wire bytes shipped to followers, frames included.
    pub bytes_shipped: AtomicU64,
    /// Bootstrap snapshots shipped to followers.
    pub snapshots_shipped: AtomicU64,
    /// Shipped messages acknowledged by followers.
    pub records_acked: AtomicU64,
    /// Wire bytes covered by follower acknowledgements — `bytes_shipped -
    /// bytes_acked` is the primary's view of replication lag in bytes.
    pub bytes_acked: AtomicU64,
    /// Heartbeats sent to followers.
    pub heartbeats_sent: AtomicU64,
    /// Fingerprint mismatches detected (either side).
    pub divergences: AtomicU64,
    /// Sessions the primary dropped to force a follower re-bootstrap.
    pub forced_resyncs: AtomicU64,
    /// Journal records this node applied from a primary's stream.
    pub records_applied: AtomicU64,
    /// Bootstrap snapshots this node applied from a primary's stream.
    pub snapshots_applied: AtomicU64,
    /// Times this node abandoned a replication session and reconnected.
    pub resyncs: AtomicU64,
    /// Heartbeat deadlines this node missed (each one also resyncs).
    pub heartbeat_misses: AtomicU64,
    /// Worst per-dataset seq lag observed at the last heartbeat (gauge).
    pub lag_seqs: AtomicU64,
}

impl ReplMetrics {
    /// Relaxed increment, mirroring `ServerMetrics::bump`.
    pub fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// Relaxed read for reporting.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Which replication role this process was started in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplRole {
    /// `--repl-addr` only: accepts followers, takes writes.
    Primary,
    /// `--replica-of`: follows a primary until promoted.
    Replica,
}

/// Replication state hung off the server's shared state. Present only
/// when the server was started with `--repl-addr` and/or `--replica-of`.
#[derive(Debug)]
pub struct ReplState {
    /// The `repl` metrics group.
    pub metrics: ReplMetrics,
    /// The role the process started in.
    pub role: ReplRole,
    /// Address the replication listener actually bound (primary side).
    pub repl_addr: Mutex<Option<std::net::SocketAddr>>,
    /// True while writes are fenced (replica that has not been promoted).
    fenced: AtomicBool,
    /// True once `POST /v1/admin/promote` sealed the stream.
    promoted: AtomicBool,
    /// True once the follower has finished catch-up (first heartbeat seen).
    bootstrapped: AtomicBool,
    /// The primary's HTTP address, learned from its `Welcome` — the
    /// `Location` target for fenced writes.
    primary_http: Mutex<String>,
    /// Readiness threshold for `GET /v1/readyz` (`--max-lag`).
    pub max_lag_seqs: u64,
}

impl ReplState {
    /// Fresh state for the given role; replicas start fenced.
    pub fn new(role: ReplRole, max_lag_seqs: u64) -> Self {
        Self {
            metrics: ReplMetrics::default(),
            role,
            repl_addr: Mutex::new(None),
            fenced: AtomicBool::new(role == ReplRole::Replica),
            promoted: AtomicBool::new(false),
            bootstrapped: AtomicBool::new(role == ReplRole::Primary),
            primary_http: Mutex::new(String::new()),
            max_lag_seqs,
        }
    }

    /// True while this node must refuse writes with 421.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// True once the node was promoted to primary.
    pub fn is_promoted(&self) -> bool {
        self.promoted.load(Ordering::SeqCst)
    }

    /// True once catch-up finished (always true for a born primary).
    pub fn is_bootstrapped(&self) -> bool {
        self.bootstrapped.load(Ordering::SeqCst)
    }

    pub(crate) fn set_bootstrapped(&self) {
        self.bootstrapped.store(true, Ordering::SeqCst);
    }

    /// Seals the stream and lifts the write fence. Returns `false` if the
    /// node was not a fenced replica (already promoted, or born primary).
    pub fn promote(&self) -> bool {
        if self.role != ReplRole::Replica {
            return false;
        }
        if !self.fenced.swap(false, Ordering::SeqCst) {
            return false;
        }
        self.promoted.store(true, Ordering::SeqCst);
        true
    }

    /// The primary's HTTP address as learned from its `Welcome` frame
    /// (empty before the first session is established).
    pub fn primary_http(&self) -> String {
        rpm_core::sync::lock_recover(&self.primary_http).clone()
    }

    pub(crate) fn set_primary_http(&self, addr: &str) {
        let mut guard = rpm_core::sync::lock_recover(&self.primary_http);
        if guard.as_str() != addr {
            guard.clear();
            guard.push_str(addr);
        }
    }

    /// Human-readable role for metrics and readiness bodies.
    pub fn role_name(&self) -> &'static str {
        match self.role {
            ReplRole::Primary => "primary",
            ReplRole::Replica => {
                if self.is_promoted() {
                    "promoted"
                } else {
                    "replica"
                }
            }
        }
    }

    /// Serialises the `repl` metrics group as a JSON object.
    pub fn metrics_json(&self) -> String {
        let m = &self.metrics;
        let shipped = ReplMetrics::get(&m.bytes_shipped);
        let acked = ReplMetrics::get(&m.bytes_acked);
        format!(
            concat!(
                "{{\"role\":\"{}\",\"followers\":{},\"records_shipped\":{},",
                "\"bytes_shipped\":{},\"snapshots_shipped\":{},\"records_acked\":{},",
                "\"bytes_acked\":{},\"lag_bytes\":{},\"heartbeats_sent\":{},",
                "\"divergences\":{},\"forced_resyncs\":{},\"records_applied\":{},",
                "\"snapshots_applied\":{},\"resyncs\":{},\"heartbeat_misses\":{},",
                "\"lag_seqs\":{}}}"
            ),
            self.role_name(),
            ReplMetrics::get(&m.followers),
            ReplMetrics::get(&m.records_shipped),
            shipped,
            ReplMetrics::get(&m.snapshots_shipped),
            ReplMetrics::get(&m.records_acked),
            acked,
            shipped.saturating_sub(acked),
            ReplMetrics::get(&m.heartbeats_sent),
            ReplMetrics::get(&m.divergences),
            ReplMetrics::get(&m.forced_resyncs),
            ReplMetrics::get(&m.records_applied),
            ReplMetrics::get(&m.snapshots_applied),
            ReplMetrics::get(&m.resyncs),
            ReplMetrics::get(&m.heartbeat_misses),
            ReplMetrics::get(&m.lag_seqs),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_state_machine() {
        let state = ReplState::new(ReplRole::Replica, REPL_MAX_LAG_SEQS);
        assert!(state.is_fenced());
        assert!(!state.is_bootstrapped());
        assert_eq!(state.role_name(), "replica");
        assert!(state.promote());
        assert!(!state.is_fenced());
        assert!(state.is_promoted());
        assert_eq!(state.role_name(), "promoted");
        assert!(!state.promote(), "second promote is refused");
    }

    #[test]
    fn primary_state_machine() {
        let state = ReplState::new(ReplRole::Primary, REPL_MAX_LAG_SEQS);
        assert!(!state.is_fenced());
        assert!(state.is_bootstrapped());
        assert_eq!(state.role_name(), "primary");
        assert!(!state.promote(), "a born primary cannot be promoted");
    }

    #[test]
    fn metrics_json_reports_lag_bytes() {
        let state = ReplState::new(ReplRole::Primary, REPL_MAX_LAG_SEQS);
        ReplMetrics::bump(&state.metrics.bytes_shipped, 100);
        ReplMetrics::bump(&state.metrics.bytes_acked, 60);
        let json = state.metrics_json();
        assert!(json.contains("\"lag_bytes\":40"), "{json}");
        assert!(json.contains("\"role\":\"primary\""), "{json}");
    }
}
