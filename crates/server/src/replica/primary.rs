//! Primary-side replication: the hub and the follower sessions.
//!
//! Every journalled mutation is published to a [`ReplHub`] **under the
//! dataset's write lock** (the map lock for registrations), so each
//! follower's channel sees events in exactly the journal's commit order.
//! The replication listener accepts follower connections; each one gets a
//! catch-up phase — newest snapshot plus the seq-filtered WAL tail,
//! collected into memory under the dataset's *read* lock and shipped only
//! after the lock is dropped — followed by the live stream drained from
//! its hub subscription. A paired reader thread consumes acknowledgements
//! and compares each acked fingerprint against the primary's own at the
//! same record; a mismatch is a detected divergence and the session is
//! dropped so the follower re-bootstraps (the "forced resync").

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rpm_core::sync::{lock_recover, read_recover};

use crate::persist::wal;
use crate::replica::proto::{self, Msg};
use crate::replica::{ReplMetrics, REPL_HEARTBEAT_MILLIS};
use crate::Shared;

/// Ship a heartbeat after this many consecutive records even when the
/// stream never goes idle, so followers can keep their lag gauge fresh
/// under sustained load.
const HEARTBEAT_EVERY_RECORDS: u64 = 64;

/// One journalled mutation, pre-encoded for shipping.
#[derive(Debug)]
pub(crate) struct Event {
    /// Dataset the record belongs to.
    pub(crate) name: String,
    /// The record's journal sequence number.
    pub(crate) seq: u64,
    /// The primary's fingerprint after applying the record.
    pub(crate) fp: u64,
    /// The WAL payload (`encode_payload` form).
    pub(crate) payload: Vec<u8>,
}

#[derive(Debug)]
struct Sub {
    id: u64,
    tx: mpsc::Sender<Arc<Event>>,
}

/// Fan-out point between the write paths and the follower sessions.
/// Channels are unbounded so publishing can never block an append; a
/// slow follower grows its own queue and nothing else.
#[derive(Debug, Default)]
pub(crate) struct ReplHub {
    subs: Mutex<Vec<Sub>>,
    /// Last published seq per dataset — the heartbeat body.
    seqs: Mutex<HashMap<String, u64>>,
    next_id: AtomicU64,
}

impl ReplHub {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Publishes one journalled record to every live subscriber. Called
    /// with the owning dataset's write lock held, which is what guarantees
    /// per-dataset ordering.
    pub(crate) fn publish(&self, event: Event) {
        self.note_seq(&event.name, event.seq);
        let event = Arc::new(event);
        lock_recover(&self.subs).retain(|sub| sub.tx.send(event.clone()).is_ok());
    }

    /// Raises (never lowers) the remembered seq for `name` — used to seed
    /// heartbeats with datasets recovered before any live publish.
    pub(crate) fn note_seq(&self, name: &str, seq: u64) {
        let mut seqs = lock_recover(&self.seqs);
        let entry = seqs.entry(name.to_string()).or_insert(0);
        *entry = (*entry).max(seq);
    }

    fn subscribe(&self) -> (u64, mpsc::Receiver<Arc<Event>>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        lock_recover(&self.subs).push(Sub { id, tx });
        (id, rx)
    }

    fn unsubscribe(&self, id: u64) {
        lock_recover(&self.subs).retain(|sub| sub.id != id);
    }

    fn seq_snapshot(&self) -> Vec<(String, u64)> {
        let mut seqs: Vec<(String, u64)> =
            lock_recover(&self.seqs).iter().map(|(k, v)| (k.clone(), *v)).collect();
        seqs.sort();
        seqs
    }
}

/// A shipped-but-unacked message the reader thread will match against the
/// follower's next acknowledgement.
#[derive(Debug)]
struct Inflight {
    name: String,
    seq: u64,
    expected_fp: u64,
    bytes: u64,
}

type InflightQueue = Arc<Mutex<VecDeque<Inflight>>>;

/// Spawns the replication acceptor over an already-bound listener.
pub(crate) fn spawn_listener(
    listener: TcpListener,
    shared: Arc<Shared>,
    hub: Arc<ReplHub>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || accept_loop(&listener, &shared, &hub))
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, hub: &Arc<ReplHub>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown_started.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown_started.load(Ordering::SeqCst) {
            // The shutdown self-connect (see `Shared::trigger_shutdown`).
            return;
        }
        let shared = shared.clone();
        let hub = hub.clone();
        std::thread::spawn(move || serve_follower(stream, &shared, &hub));
    }
}

/// One follower session: handshake, catch-up, then the live stream, with
/// a paired reader thread checking acknowledgements.
fn serve_follower(mut stream: TcpStream, shared: &Arc<Shared>, hub: &Arc<ReplHub>) {
    let Some(repl) = shared.repl.as_ref() else { return };
    // The reader tolerates timeouts (acks are quiet on an idle stream);
    // the timeout only bounds how long shutdown can be ignored.
    let lease = Duration::from_millis(3 * REPL_HEARTBEAT_MILLIS.max(1));
    if stream.set_read_timeout(Some(lease)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    match proto::read_msg(&mut stream) {
        Ok(Msg::Hello { version }) if version == proto::PROTO_VERSION => {}
        _ => return,
    }
    let welcome = Msg::Welcome {
        version: proto::PROTO_VERSION,
        http_addr: shared.addr.to_string(),
        heartbeat_millis: REPL_HEARTBEAT_MILLIS,
    };
    if proto::write_msg(&mut stream, &welcome).is_err() {
        return;
    }
    let Ok(reader_stream) = stream.try_clone() else { return };

    // Subscribe *before* reading catch-up state: anything published after
    // the state read is queued on the channel, and the follower's seq
    // filter drops the overlap. Nothing can fall between.
    let (sub_id, rx) = hub.subscribe();
    ReplMetrics::bump(&repl.metrics.followers, 1);
    let inflight: InflightQueue = Arc::new(Mutex::new(VecDeque::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let shared = shared.clone();
        let inflight = inflight.clone();
        let stop = stop.clone();
        std::thread::spawn(move || reader_loop(reader_stream, &shared, &inflight, &stop))
    };

    stream_session(&mut stream, shared, hub, &rx, &inflight);

    stop.store(true, Ordering::SeqCst);
    let _ = stream.shutdown(Shutdown::Both);
    hub.unsubscribe(sub_id);
    repl.metrics.followers.fetch_sub(1, Ordering::Relaxed);
    let _ = reader.join();
}

fn stream_session(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    hub: &Arc<ReplHub>,
    rx: &mpsc::Receiver<Arc<Event>>,
    inflight: &InflightQueue,
) {
    let Some(repl) = shared.repl.as_ref() else { return };
    let metrics = &repl.metrics;
    // Catch-up: per dataset, collect the shippable state into memory under
    // the read lock, then send with no lock held.
    for name in shared.registry.names() {
        for (msg, seq) in catchup_messages(shared, hub, &name) {
            if !send_tracked(stream, metrics, inflight, &name, seq, &msg) {
                return;
            }
        }
    }
    // End-of-catch-up marker: the first heartbeat tells the follower its
    // bootstrap is complete and hands it the seqs to measure lag against.
    if !send_heartbeat(stream, hub, metrics) {
        return;
    }
    let mut since_heartbeat = 0u64;
    loop {
        if shared.shutdown_started.load(Ordering::SeqCst) {
            return;
        }
        match rx.recv_timeout(Duration::from_millis(REPL_HEARTBEAT_MILLIS.max(1))) {
            Ok(event) => {
                let msg = Msg::Record {
                    name: event.name.clone(),
                    expected_fp: event.fp,
                    payload: event.payload.clone(),
                };
                if !send_tracked(stream, metrics, inflight, &event.name, event.seq, &msg) {
                    return;
                }
                since_heartbeat += 1;
                if since_heartbeat >= HEARTBEAT_EVERY_RECORDS {
                    since_heartbeat = 0;
                    if !send_heartbeat(stream, hub, metrics) {
                        return;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                since_heartbeat = 0;
                if !send_heartbeat(stream, hub, metrics) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// The bootstrap sequence for one dataset: a snapshot followed by every
/// WAL record past it, with the primary's current fingerprint attached to
/// the last message so the follower can verify the whole chain at once.
///
/// The snapshot is the newest on-disk one when it exists; otherwise one is
/// serialised from the in-memory dataset at its current seq (with no tail
/// to ship). Starting from a snapshot either way matters for convergence:
/// applying a snapshot **resets** the follower's dataset, so a diverged
/// replica re-bootstrapping after a forced resync cannot seq-skip its way
/// past the corruption — a records-only catch-up could.
///
/// All file reads happen under the dataset's **read** lock — appends hold
/// the write lock, so both files are quiescent — and nothing is sent until
/// it is dropped.
fn catchup_messages(shared: &Arc<Shared>, hub: &Arc<ReplHub>, name: &str) -> Vec<(Msg, u64)> {
    let Some(dataset) = shared.registry.get(name) else { return Vec::new() };
    let Some(persist) = shared.persist.as_ref() else { return Vec::new() };
    let ds = read_recover(&dataset);
    let fp = ds.fingerprint();
    let last_seq = ds.last_seq().unwrap_or(0);
    hub.note_seq(name, last_seq);
    let mut out: Vec<(Msg, u64)> = Vec::new();
    let mut snap_seq = None;
    if let Some(bytes) = persist.snapshot_bytes(name) {
        if let Ok((header, _)) = rpm_timeseries::snapshot_from_bytes(&bytes) {
            snap_seq = Some(header.seq);
            let msg = Msg::Snapshot { name: name.to_string(), expected_fp: 0, snapshot: bytes };
            out.push((msg, header.seq));
        }
    }
    let snap_seq = match snap_seq {
        Some(seq) => seq,
        None => {
            let hot = ds.hot_params();
            let header = rpm_timeseries::SnapshotHeader {
                seq: last_seq,
                per: hot.per,
                min_ps: hot.min_ps as u64,
                min_rec: hot.min_rec as u64,
                appends: ds.appends(),
            };
            let bytes = rpm_timeseries::snapshot_to_bytes(&header, ds.db());
            out.push((
                Msg::Snapshot { name: name.to_string(), expected_fp: 0, snapshot: bytes },
                last_seq,
            ));
            last_seq
        }
    };
    let mut records = match persist.read_wal_tail(name) {
        Ok(Some(replay)) => replay.records,
        _ => Vec::new(),
    };
    records.retain(|r| r.seq() > snap_seq);
    for record in &records {
        let msg = Msg::Record {
            name: name.to_string(),
            expected_fp: 0,
            payload: wal::encode_payload(record),
        };
        out.push((msg, record.seq()));
    }
    if let Some((Msg::Snapshot { expected_fp, .. } | Msg::Record { expected_fp, .. }, _)) =
        out.last_mut()
    {
        *expected_fp = fp;
    }
    out
}

fn send_heartbeat(stream: &mut TcpStream, hub: &Arc<ReplHub>, metrics: &ReplMetrics) -> bool {
    let beat = Msg::Heartbeat { seqs: hub.seq_snapshot() };
    if proto::write_msg(stream, &beat).is_err() {
        return false;
    }
    ReplMetrics::bump(&metrics.heartbeats_sent, 1);
    true
}

/// Ships one message and queues the matching in-flight expectation for the
/// reader thread. Returns `false` when the follower is gone.
fn send_tracked(
    stream: &mut TcpStream,
    metrics: &ReplMetrics,
    inflight: &InflightQueue,
    name: &str,
    seq: u64,
    msg: &Msg,
) -> bool {
    let expected_fp = match msg {
        Msg::Snapshot { expected_fp, .. } | Msg::Record { expected_fp, .. } => *expected_fp,
        _ => 0,
    };
    let bytes = match proto::write_msg(stream, msg) {
        Ok(bytes) => bytes,
        Err(_) => return false,
    };
    lock_recover(inflight).push_back(Inflight { name: name.to_string(), seq, expected_fp, bytes });
    match msg {
        Msg::Snapshot { .. } => ReplMetrics::bump(&metrics.snapshots_shipped, 1),
        _ => ReplMetrics::bump(&metrics.records_shipped, 1),
    }
    ReplMetrics::bump(&metrics.bytes_shipped, bytes);
    true
}

/// Consumes follower acknowledgements. Acks arrive strictly in ship order
/// (the follower answers every `Snapshot`/`Record` message, including
/// seq-skipped ones), so matching is a FIFO pop. A fingerprint mismatch on
/// a checked record is a detected divergence: bump the counters and drop
/// the session so the follower re-bootstraps from the snapshot.
fn reader_loop(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    inflight: &InflightQueue,
    stop: &AtomicBool,
) {
    let Some(repl) = shared.repl.as_ref() else { return };
    let metrics = &repl.metrics;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let msg = match proto::read_msg(&mut stream) {
            Ok(msg) => msg,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                continue; // idle follower; acks are not heartbeats
            }
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        let Msg::Ack { name, seq, fingerprint } = msg else {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        };
        let front = lock_recover(inflight).pop_front();
        let Some(front) = front else {
            // An ack with nothing in flight: protocol confusion.
            ReplMetrics::bump(&metrics.forced_resyncs, 1);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        };
        if front.name != name || front.seq != seq {
            ReplMetrics::bump(&metrics.forced_resyncs, 1);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        ReplMetrics::bump(&metrics.records_acked, 1);
        ReplMetrics::bump(&metrics.bytes_acked, front.bytes);
        if front.expected_fp != 0 && front.expected_fp != fingerprint {
            ReplMetrics::bump(&metrics.divergences, 1);
            ReplMetrics::bump(&metrics.forced_resyncs, 1);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
}
