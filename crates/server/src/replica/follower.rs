//! Follower-side replication: the client that keeps a replica converged.
//!
//! One thread owns the whole follower life cycle: connect to the primary's
//! replication address, handshake, then apply the stream — bootstrap
//! snapshots through [`Registry::apply_snapshot`] and shipped records
//! through [`Registry::apply_record`], the same journal-apply semantics
//! recovery uses, so the incremental miner, pattern store, and result
//! cache stay warm. Every `Snapshot`/`Record` message is acknowledged with
//! the replica's post-apply stream fingerprint; when the primary attached
//! its own fingerprint the replica also checks it locally and abandons the
//! session on a mismatch. Any abnormal session end — corrupt frame,
//! fingerprint divergence, heartbeat silence, plain disconnect — counts a
//! resync and reconnects from scratch, which re-runs bootstrap and is what
//! forces convergence after divergence.
//!
//! The loop ends cleanly on shutdown or promotion
//! (`POST /v1/admin/promote` seals the stream; the next loop iteration
//! observes the flag and exits, leaving the journal open for local writes).
//!
//! [`Registry::apply_snapshot`]: crate::Registry::apply_snapshot
//! [`Registry::apply_record`]: crate::Registry::apply_record

use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use rpm_core::sync::read_recover;

use crate::persist::wal;
use crate::replica::proto::{self, Msg};
use crate::replica::{ReplMetrics, ReplState};
use crate::Shared;

/// Pause between reconnect attempts while the primary is unreachable.
const RECONNECT_BACKOFF_MILLIS: u64 = 200;

/// How one replication session ended.
enum SessionEnd {
    /// Shutdown or promotion: leave the loop for good.
    Sealed,
    /// The primary could not be reached or refused the handshake; retry
    /// without counting a resync.
    NeverEstablished,
    /// An established session broke (corruption, divergence, heartbeat
    /// silence, disconnect): count a resync and re-bootstrap.
    Dropped,
}

/// Spawns the follower client thread.
pub(crate) fn spawn_client(shared: Arc<Shared>, primary: String) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || client_loop(&shared, &primary))
}

fn client_loop(shared: &Arc<Shared>, primary: &str) {
    let Some(repl) = shared.repl.as_ref() else { return };
    loop {
        if shared.shutdown_started.load(Ordering::SeqCst) || repl.is_promoted() {
            return;
        }
        match run_session(shared, repl, primary) {
            SessionEnd::Sealed => return,
            SessionEnd::NeverEstablished => {}
            SessionEnd::Dropped => ReplMetrics::bump(&repl.metrics.resyncs, 1),
        }
        // Not a pool worker: this dedicated client thread owns no requests,
        // and the backoff is what keeps a dead primary from being hammered.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(Duration::from_millis(RECONNECT_BACKOFF_MILLIS));
    }
}

fn run_session(shared: &Arc<Shared>, repl: &ReplState, primary: &str) -> SessionEnd {
    let Ok(mut stream) = TcpStream::connect(primary) else {
        return SessionEnd::NeverEstablished;
    };
    let _ = stream.set_nodelay(true);
    if proto::write_msg(&mut stream, &Msg::Hello { version: proto::PROTO_VERSION }).is_err() {
        return SessionEnd::NeverEstablished;
    }
    let heartbeat_millis = match proto::read_msg(&mut stream) {
        Ok(Msg::Welcome { version, http_addr, heartbeat_millis })
            if version == proto::PROTO_VERSION =>
        {
            repl.set_primary_http(&http_addr);
            heartbeat_millis.max(1)
        }
        _ => return SessionEnd::NeverEstablished,
    };
    // Three missed heartbeats of silence and the session is declared dead.
    if stream.set_read_timeout(Some(Duration::from_millis(3 * heartbeat_millis))).is_err() {
        return SessionEnd::NeverEstablished;
    }
    loop {
        if shared.shutdown_started.load(Ordering::SeqCst) || repl.is_promoted() {
            return SessionEnd::Sealed;
        }
        let msg = match proto::read_msg(&mut stream) {
            Ok(msg) => msg,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                ReplMetrics::bump(&repl.metrics.heartbeat_misses, 1);
                return SessionEnd::Dropped;
            }
            // Corrupt frames (CRC/decode) and disconnects both land here.
            Err(_) => return SessionEnd::Dropped,
        };
        match msg {
            Msg::Snapshot { name, expected_fp, snapshot } => {
                let Ok((header, db)) = rpm_timeseries::snapshot_from_bytes(&snapshot) else {
                    return SessionEnd::Dropped;
                };
                let Ok((old_fp, fp)) = shared.registry.apply_snapshot(&name, &header, &db) else {
                    return SessionEnd::Dropped;
                };
                ReplMetrics::bump(&repl.metrics.snapshots_applied, 1);
                if let Some(old_fp) = old_fp.filter(|old| *old != fp) {
                    shared.cache.invalidate_fingerprint(old_fp);
                }
                if !ack(&mut stream, &name, header.seq, fp) {
                    return SessionEnd::Dropped;
                }
                if expected_fp != 0 && fp != expected_fp {
                    ReplMetrics::bump(&repl.metrics.divergences, 1);
                    return SessionEnd::Dropped;
                }
            }
            Msg::Record { name, expected_fp, payload } => {
                let Some(record) = wal::decode_payload(&payload) else {
                    return SessionEnd::Dropped;
                };
                let seq = record.seq();
                let Ok(outcome) = shared.registry.apply_record(&name, &record) else {
                    return SessionEnd::Dropped;
                };
                let ack_fp = if outcome.applied {
                    ReplMetrics::bump(&repl.metrics.records_applied, 1);
                    refresh_cache(shared, &name, &outcome);
                    outcome.fingerprint
                } else if expected_fp != 0 {
                    // Seq-skipped duplicate (catch-up overlap): nothing new
                    // applied, nothing to compare — echo the expectation.
                    expected_fp
                } else {
                    outcome.fingerprint
                };
                if !ack(&mut stream, &name, seq, ack_fp) {
                    return SessionEnd::Dropped;
                }
                if outcome.applied && expected_fp != 0 && outcome.fingerprint != expected_fp {
                    ReplMetrics::bump(&repl.metrics.divergences, 1);
                    return SessionEnd::Dropped;
                }
            }
            Msg::Heartbeat { seqs } => {
                let lag = worst_lag(shared, &seqs);
                repl.metrics.lag_seqs.store(lag, Ordering::Relaxed);
                repl.set_bootstrapped();
            }
            // Anything else mid-stream is protocol confusion.
            _ => return SessionEnd::Dropped,
        }
    }
}

/// Keeps the result cache warm across an applied record, mirroring the
/// primary's append handler: patch the hot-params entry in place via a
/// dirty-frontier delta mine when possible, invalidate otherwise. A
/// register record is a full reset, so it always invalidates.
fn refresh_cache(shared: &Arc<Shared>, name: &str, outcome: &crate::ApplyOutcome) {
    if outcome.fingerprint == outcome.old_fingerprint {
        return;
    }
    let mut patched = false;
    if !outcome.register {
        if let Some(dataset) = shared.registry.get(name) {
            let ds = read_recover(&dataset);
            // The client thread is the only writer on a fenced replica, so
            // the fingerprint cannot move between apply and patch.
            if ds.fingerprint() == outcome.fingerprint {
                patched = crate::patch_hot_cache(shared, &ds, outcome.old_fingerprint);
            }
        }
    }
    if !patched {
        shared.cache.invalidate_fingerprint(outcome.old_fingerprint);
    }
}

fn ack(stream: &mut TcpStream, name: &str, seq: u64, fingerprint: u64) -> bool {
    let msg = Msg::Ack { name: name.to_string(), seq, fingerprint };
    proto::write_msg(stream, &msg).is_ok()
}

/// The worst per-dataset gap between the primary's journal and ours.
fn worst_lag(shared: &Arc<Shared>, seqs: &[(String, u64)]) -> u64 {
    let mut worst = 0u64;
    for (name, primary_seq) in seqs {
        let local = shared
            .registry
            .get(name)
            .and_then(|dataset| read_recover(&dataset).last_seq())
            .unwrap_or(0);
        worst = worst.max(primary_seq.saturating_sub(local));
    }
    worst
}
