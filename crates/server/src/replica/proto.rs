//! The replication wire protocol.
//!
//! Every message travels in exactly the WAL's frame format —
//! `[len: u32 LE][crc: u32 LE][payload]` with CRC-32 (IEEE) over the
//! payload — so a shipped journal record is protected by the same checksum
//! discipline on the wire as at rest. The payload starts with a message
//! tag; varints, zigzag and length-prefixed strings reuse the WAL codec.
//!
//! Follower → primary: [`Msg::Hello`] (subscribe), [`Msg::Ack`] (applied a
//! shipped message; carries the follower's chained FNV-1a stream
//! fingerprint so the primary can detect divergence immediately).
//!
//! Primary → follower: [`Msg::Welcome`] (protocol version, the primary's
//! HTTP address for write redirects, heartbeat interval),
//! [`Msg::Snapshot`] (a verbatim `RPMS` snapshot file for bootstrap),
//! [`Msg::Record`] (one WAL payload, optionally with the primary's
//! post-apply fingerprint), [`Msg::Heartbeat`] (per-dataset sequence
//! numbers; doubles as the end-of-catch-up marker and the lag signal).

use std::io::{Read, Write};

use crate::persist::wal::{crc32, put_varint, Cursor};
use crate::persist::WAL_MAX_RECORD_BYTES;

/// Protocol version spoken by both ends; a mismatch ends the session
/// before any state moves.
pub(crate) const PROTO_VERSION: u64 = 1;

const TAG_HELLO: u8 = 0x10;
const TAG_ACK: u8 = 0x11;
const TAG_WELCOME: u8 = 0x20;
const TAG_SNAPSHOT: u8 = 0x21;
const TAG_RECORD: u8 = 0x22;
const TAG_HEARTBEAT: u8 = 0x23;

/// One replication message (either direction).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Msg {
    /// Follower subscribes to the stream.
    Hello {
        /// The follower's [`PROTO_VERSION`].
        version: u64,
    },
    /// Follower applied (or seq-skipped) a shipped message.
    Ack {
        /// Dataset the acknowledged message belonged to.
        name: String,
        /// Sequence number of the acknowledged message.
        seq: u64,
        /// The follower's stream fingerprint after handling it.
        fingerprint: u64,
    },
    /// Primary accepts the subscription.
    Welcome {
        /// The primary's [`PROTO_VERSION`].
        version: u64,
        /// The primary's HTTP address — the `Location` target for writes
        /// a fenced replica answers with `421`.
        http_addr: String,
        /// Heartbeat interval; the follower treats `3×` this of silence as
        /// a missed heartbeat and resyncs.
        heartbeat_millis: u64,
    },
    /// A verbatim snapshot file (`RPMS` envelope) for bootstrap.
    Snapshot {
        /// Dataset being bootstrapped.
        name: String,
        /// The primary's fingerprint at the snapshot's seq, or `0` when the
        /// WAL tail extends past it (the tail's last record carries it).
        expected_fp: u64,
        /// The raw snapshot bytes, validated by the follower exactly like
        /// local recovery would.
        snapshot: Vec<u8>,
    },
    /// One journal record, payload exactly as framed in the WAL.
    Record {
        /// Dataset the record belongs to.
        name: String,
        /// The primary's fingerprint after applying this record, or `0`
        /// when unknown (mid-catch-up).
        expected_fp: u64,
        /// The WAL payload ([`crate::persist::wal::encode_payload`] form).
        payload: Vec<u8>,
    },
    /// Liveness + lag: the primary's last journalled seq per dataset.
    Heartbeat {
        /// `(dataset, seq)` pairs, one per dataset.
        seqs: Vec<(String, u64)>,
    },
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(c: &mut Cursor<'_>) -> Option<String> {
    let len = c.get_varint()? as usize;
    if len > WAL_MAX_RECORD_BYTES {
        return None;
    }
    let raw = c.get_slice(len)?;
    Some(std::str::from_utf8(raw).ok()?.to_string())
}

/// Serialises a message payload (the CRC-protected bytes).
pub(crate) fn encode(msg: &Msg) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    match msg {
        Msg::Hello { version } => {
            buf.push(TAG_HELLO);
            put_varint(&mut buf, *version);
        }
        Msg::Ack { name, seq, fingerprint } => {
            buf.push(TAG_ACK);
            put_string(&mut buf, name);
            put_varint(&mut buf, *seq);
            put_varint(&mut buf, *fingerprint);
        }
        Msg::Welcome { version, http_addr, heartbeat_millis } => {
            buf.push(TAG_WELCOME);
            put_varint(&mut buf, *version);
            put_string(&mut buf, http_addr);
            put_varint(&mut buf, *heartbeat_millis);
        }
        Msg::Snapshot { name, expected_fp, snapshot } => {
            buf.push(TAG_SNAPSHOT);
            put_string(&mut buf, name);
            put_varint(&mut buf, *expected_fp);
            buf.extend_from_slice(snapshot);
        }
        Msg::Record { name, expected_fp, payload } => {
            buf.push(TAG_RECORD);
            put_string(&mut buf, name);
            put_varint(&mut buf, *expected_fp);
            buf.extend_from_slice(payload);
        }
        Msg::Heartbeat { seqs } => {
            buf.push(TAG_HEARTBEAT);
            put_varint(&mut buf, seqs.len() as u64);
            for (name, seq) in seqs {
                put_string(&mut buf, name);
                put_varint(&mut buf, *seq);
            }
        }
    }
    buf
}

/// Decodes a payload whose CRC already checked out. `None` means the bytes
/// are not a well-formed message — the receiving end treats the session as
/// corrupt and resyncs.
pub(crate) fn decode(payload: &[u8]) -> Option<Msg> {
    let mut c = Cursor { data: payload, pos: 0 };
    match c.get_u8()? {
        TAG_HELLO => Some(Msg::Hello { version: c.get_varint()? }),
        TAG_ACK => Some(Msg::Ack {
            name: get_string(&mut c)?,
            seq: c.get_varint()?,
            fingerprint: c.get_varint()?,
        }),
        TAG_WELCOME => Some(Msg::Welcome {
            version: c.get_varint()?,
            http_addr: get_string(&mut c)?,
            heartbeat_millis: c.get_varint()?,
        }),
        TAG_SNAPSHOT => Some(Msg::Snapshot {
            name: get_string(&mut c)?,
            expected_fp: c.get_varint()?,
            snapshot: c.rest().to_vec(),
        }),
        TAG_RECORD => Some(Msg::Record {
            name: get_string(&mut c)?,
            expected_fp: c.get_varint()?,
            payload: c.rest().to_vec(),
        }),
        TAG_HEARTBEAT => {
            let n = c.get_varint()? as usize;
            if n > payload.len() {
                return None; // an entry costs ≥ 2 bytes; reject absurd counts
            }
            let mut seqs = Vec::with_capacity(n);
            for _ in 0..n {
                seqs.push((get_string(&mut c)?, c.get_varint()?));
            }
            Some(Msg::Heartbeat { seqs })
        }
        _ => None,
    }
}

/// Frames a payload for the wire: `[len][crc32][payload]`.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(payload.len() + 8);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// Writes one framed message.
pub(crate) fn write_msg<W: Write>(w: &mut W, msg: &Msg) -> std::io::Result<u64> {
    let framed = frame(&encode(msg));
    w.write_all(&framed)?;
    w.flush()?;
    Ok(framed.len() as u64)
}

/// Reads one frame and verifies its checksum, returning the raw payload.
/// A CRC mismatch, an absurd length prefix, or a short read surfaces as
/// `InvalidData` — the caller's cue to drop the session and resync.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Vec<u8>> {
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    let mut word = [0u8; 4];
    // lint:allow(panic-reachability): `head` is a fixed [u8; 8] — the 0..4 slice always exists
    word.copy_from_slice(&head[0..4]);
    let len = u32::from_le_bytes(word) as usize;
    // lint:allow(panic-reachability): `head` is a fixed [u8; 8] — the 4..8 slice always exists
    word.copy_from_slice(&head[4..8]);
    let crc = u32::from_le_bytes(word);
    if len > WAL_MAX_RECORD_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("replication frame of {len} bytes exceeds {WAL_MAX_RECORD_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "replication frame failed its checksum",
        ));
    }
    Ok(payload)
}

/// Reads and decodes one message.
pub(crate) fn read_msg<R: Read>(r: &mut R) -> std::io::Result<Msg> {
    let payload = read_frame(r)?;
    decode(&payload).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "undecodable replication message")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Hello { version: PROTO_VERSION },
            Msg::Ack { name: "shop".into(), seq: 42, fingerprint: 0xDEAD_BEEF },
            Msg::Welcome {
                version: PROTO_VERSION,
                http_addr: "127.0.0.1:8726".into(),
                heartbeat_millis: 500,
            },
            Msg::Snapshot { name: "a".into(), expected_fp: 7, snapshot: vec![1, 2, 3] },
            Msg::Record { name: "b".into(), expected_fp: 0, payload: vec![9; 40] },
            Msg::Heartbeat { seqs: vec![("a".into(), 3), ("café".into(), 9)] },
        ]
    }

    #[test]
    fn roundtrip_every_message() {
        for msg in samples() {
            let payload = encode(&msg);
            assert_eq!(decode(&payload).unwrap(), msg);
            // And through the framed stream API.
            let mut wire = Vec::new();
            write_msg(&mut wire, &msg).unwrap();
            let mut cursor = std::io::Cursor::new(wire);
            assert_eq!(read_msg(&mut cursor).unwrap(), msg);
        }
    }

    #[test]
    fn corrupt_frames_are_invalid_data() {
        let mut wire = Vec::new();
        write_msg(&mut wire, &Msg::Hello { version: 1 }).unwrap();
        // Flip one payload bit: CRC catches it.
        let at = wire.len() - 1;
        wire[at] ^= 0x01;
        let mut cursor = std::io::Cursor::new(wire);
        let err = read_msg(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // An absurd length prefix is rejected before allocating.
        let mut absurd = Vec::new();
        absurd.extend_from_slice(&u32::MAX.to_le_bytes());
        absurd.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = std::io::Cursor::new(absurd);
        assert_eq!(read_msg(&mut cursor).unwrap_err().kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn junk_payloads_decode_to_none() {
        assert!(decode(&[]).is_none());
        assert!(decode(&[0xFF]).is_none());
        assert!(decode(&[TAG_ACK, 0x02, b'a']).is_none(), "truncated string");
        assert!(decode(&[TAG_HEARTBEAT, 0x7F]).is_none(), "absurd entry count");
    }
}
