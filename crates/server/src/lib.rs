//! `rpm-server` — a dependency-free HTTP service over the RP-growth engine.
//!
//! The serving layer turns the library's mining pipeline into a long-lived
//! daemon speaking plain HTTP/1.1 over [`std::net::TcpListener`] — no
//! external crates, so tier-1 stays offline. The moving parts:
//!
//! * a **dataset registry** ([`Registry`]) of named, fingerprinted datasets,
//!   each backed by an [`rpm_core::IncrementalMiner`] so appends keep the
//!   per-item interval scanners live;
//! * a **result cache** ([`ResultCache`]) keyed by
//!   `(dataset fingerprint, ResolvedParams)`; an append **patches** the
//!   hot-params entry in place via a delta mine over the dirty frontier
//!   ([`rpm_core::delta`]) when the dataset's pattern store allows it, and
//!   invalidates otherwise;
//! * a **bounded worker pool**: an acceptor thread feeds a fixed-capacity
//!   connection queue drained by `threads` workers; when the queue is full
//!   the acceptor answers `503` immediately (backpressure, not pile-up);
//! * **graceful shutdown**: `POST /v1/shutdown` (or
//!   [`ServerHandle::shutdown`]) fires a shared [`CancelToken`] wired into
//!   every in-flight [`MiningSession`], so long mines drain as sound
//!   `206 Partial Content` responses instead of being killed mid-write;
//! * **durability** (opt-in via [`ServerConfig::persist`]): every register
//!   and append is journalled to a per-dataset WAL before it mutates the
//!   miner, snapshots are cut periodically, and startup recovery rebuilds
//!   the registry from disk — see the [`persist`] module.
//!
//! # Endpoints (`/v1`)
//!
//! The API surface is versioned under `/v1/…`. The original unversioned
//! paths still work for one release but are deprecated: they answer with a
//! `Deprecation: true` header. Every non-2xx response carries a uniform
//! JSON envelope `{"error":{"code":…,"message":…}}`.
//!
//! | Method & path                      | Effect |
//! |------------------------------------|--------|
//! | `POST /v1/datasets/{name}`         | upload a dataset (binary `RPMB` or text), `201`; `409` if the name is taken unless `?replace=true` |
//! | `POST /v1/datasets/{name}/append`  | append `ts<TAB>items…` lines; patches the hot cache entry via delta mine, else invalidates |
//! | `POST /v1/datasets/{name}/mine`    | mine with `per`, `min-ps`, `min-rec`, optional `timeout`, `threads`; `200` complete / `206` partial |
//! | `GET /v1/datasets/{name}/active?at=ts` | patterns active at `ts` (or `from`/`to`), served from the cached index |
//! | `GET /v1/datasets`                 | registered datasets |
//! | `GET /v1/metrics`                  | server + engine + cache + persistence + replication counters |
//! | `GET /v1/healthz`                  | liveness |
//! | `GET /v1/readyz`                   | readiness: recovery done and (on a replica) caught up within `max-lag` |
//! | `POST /v1/admin/promote`           | promote a caught-up replica to primary (seals the stream, accepts writes) |
//! | `POST /v1/shutdown`                | graceful shutdown (flushes a final snapshot of every durable dataset) |
//!
//! # Replication
//!
//! With `--repl-addr` the server additionally binds a replication listener
//! and streams its journal to followers; with `--replica-of HOST:PORT` it
//! runs as a read replica — bootstrapping from the primary's snapshot +
//! WAL tail, applying the live stream, fencing writes with
//! `421 Misdirected Request` + a `Location` at the primary — until
//! promoted. See the `replica` module docs for the protocol.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

mod cache;
mod http;
mod metrics;
pub mod persist;
mod pool;
mod registry;
mod replica;
mod timeparse;

pub use cache::{CacheStats, CachedResult, ResultCache};
pub use http::{read_request, ParseError, Request, Response};
pub use metrics::ServerMetrics;
pub use persist::{FsyncPolicy, PersistConfig, Persistence, WalRecord, WalReplay};
pub use registry::{
    decode_dataset_body, parse_append_body, AppendError, ApplyOutcome, Dataset, RecoveryReport,
    RegisterError, Registry,
};
pub use replica::{ReplMetrics, ReplRole, ReplState, REPL_HEARTBEAT_MILLIS, REPL_MAX_LAG_SEQS};
pub use timeparse::parse_duration;

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pool::ConnQueue;
use rpm_core::engine::{CancelToken, MetricsCollector, MiningSession, RunControl};
use rpm_core::growth::MineScratch;
use rpm_core::params::{ResolvedParams, RpParams, Threshold};
use rpm_core::pattern::RecurringPattern;
use rpm_core::sync::{read_recover, write_recover};
use rpm_core::write_patterns_json;
use rpm_timeseries::Timestamp;

/// How the server binds and bounds itself.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8726` (port `0` picks one).
    pub addr: String,
    /// Worker threads draining the connection queue.
    pub threads: usize,
    /// Result-cache budget in bytes (`0` disables caching).
    pub cache_bytes: usize,
    /// Connections allowed to wait beyond the ones in service; the acceptor
    /// answers `503` once this fills.
    pub queue_depth: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Durability: `Some` journals every write to a per-dataset WAL under
    /// the given data directory and recovers from it at bind time; `None`
    /// keeps the registry purely in-memory.
    pub persist: Option<PersistConfig>,
    /// Primary-side replication: bind a second listener on this address
    /// (port `0` picks one) and stream the journal to subscribed
    /// followers. Requires [`ServerConfig::persist`].
    pub repl_addr: Option<String>,
    /// Follower-side replication: connect to a primary's replication
    /// address (`HOST:PORT`), bootstrap from its snapshot + WAL tail, and
    /// fence local writes until promoted. Requires
    /// [`ServerConfig::persist`].
    pub replica_of: Option<String>,
    /// Readiness threshold for `GET /v1/readyz` on a replica: worst
    /// per-dataset seq lag allowed while still reporting ready.
    pub repl_max_lag: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8726".to_string(),
            threads: 4,
            cache_bytes: 64 << 20,
            queue_depth: 64,
            io_timeout: Duration::from_secs(30),
            persist: None,
            repl_addr: None,
            replica_of: None,
            repl_max_lag: REPL_MAX_LAG_SEQS,
        }
    }
}

/// State shared by the acceptor, the workers and the handle.
#[derive(Debug)]
struct Shared {
    registry: Registry,
    cache: ResultCache,
    metrics: ServerMetrics,
    queue: ConnQueue,
    cancel: CancelToken,
    shutdown_started: AtomicBool,
    addr: SocketAddr,
    persist: Option<Arc<Persistence>>,
    repl: Option<Arc<ReplState>>,
}

impl Shared {
    /// Idempotently starts the drain: stop admissions, cancel every
    /// in-flight mining session, and wake the acceptor (and the
    /// replication acceptor, if any) with self-connects so they observe
    /// the flag even while parked in `accept()`.
    fn trigger_shutdown(&self) {
        if self.shutdown_started.swap(true, Ordering::SeqCst) {
            return;
        }
        self.cancel.cancel();
        self.queue.shutdown();
        let _ = TcpStream::connect(self.addr);
        if let Some(repl) = &self.repl {
            if let Some(repl_addr) = *rpm_core::sync::lock_recover(&repl.repl_addr) {
                let _ = TcpStream::connect(repl_addr);
            }
        }
    }
}

/// The running server: spawned by [`Server::bind`].
pub struct Server;

impl Server {
    /// Binds `config.addr`, spawns the acceptor and worker threads, and
    /// returns a handle for registering datasets and shutting down.
    pub fn bind(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let repl_enabled = config.repl_addr.is_some() || config.replica_of.is_some();
        if repl_enabled && config.persist.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "replication (--repl-addr / --replica-of) requires a data directory",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Recover durable state *before* accepting connections, so the
        // first request already sees every dataset the previous process
        // acknowledged.
        let (mut registry, persist, recovery) = match &config.persist {
            Some(persist_config) => {
                let persist = Persistence::open(persist_config.clone())?;
                let (registry, report) = Registry::with_persistence(persist.clone())?;
                (registry, Some(persist), Some(report))
            }
            None => (Registry::new(), None, None),
        };
        let repl = repl_enabled.then(|| {
            let role =
                if config.replica_of.is_some() { ReplRole::Replica } else { ReplRole::Primary };
            Arc::new(ReplState::new(role, config.repl_max_lag))
        });
        // Bind the replication listener and install the hub before any
        // request or follower can arrive: every journalled record from the
        // first request onward is published.
        let mut repl_listener = None;
        let mut hub = None;
        if let (Some(repl_addr), Some(repl)) = (&config.repl_addr, &repl) {
            let bound = TcpListener::bind(repl_addr)?;
            *rpm_core::sync::lock_recover(&repl.repl_addr) = Some(bound.local_addr()?);
            let fanout = Arc::new(replica::primary::ReplHub::new());
            registry.set_hub(fanout.clone());
            repl_listener = Some(bound);
            hub = Some(fanout);
        }
        let shared = Arc::new(Shared {
            registry,
            cache: ResultCache::new(config.cache_bytes),
            metrics: ServerMetrics::new(),
            queue: ConnQueue::new(config.queue_depth),
            cancel: CancelToken::new(),
            shutdown_started: AtomicBool::new(false),
            addr,
            persist,
            repl,
        });
        let workers: Vec<_> = (0..config.threads.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = shared.clone();
            let io_timeout = config.io_timeout;
            std::thread::spawn(move || acceptor_loop(&listener, &shared, io_timeout))
        };
        let mut repl_threads = Vec::new();
        if let (Some(repl_listener), Some(hub)) = (repl_listener, hub) {
            repl_threads.push(replica::primary::spawn_listener(repl_listener, shared.clone(), hub));
        }
        if let Some(primary) = config.replica_of.clone() {
            repl_threads.push(replica::follower::spawn_client(shared.clone(), primary));
        }
        Ok(ServerHandle { addr, shared, acceptor, workers, repl_threads, recovery })
    }
}

/// Handle to a running server: address, registry access, shutdown, join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
    repl_threads: Vec<std::thread::JoinHandle<()>>,
    recovery: Option<RecoveryReport>,
}

impl ServerHandle {
    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound replication listener address, when running with
    /// [`ServerConfig::repl_addr`] (useful with port `0`).
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        let repl = self.shared.repl.as_ref()?;
        *rpm_core::sync::lock_recover(&repl.repl_addr)
    }

    /// The dataset registry, e.g. for preloading datasets from the CLI.
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// What startup recovery found, when running with a data directory.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Requests a graceful shutdown (equivalent to `POST /v1/shutdown`).
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Blocks until the acceptor and every worker have drained and exited,
    /// then flushes a final snapshot of every durable dataset (the workers
    /// are gone, so the flush sees quiescent state).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        // Replication threads exit within a heartbeat interval of the
        // shutdown flag (bounded accept/recv/read timeouts).
        for thread in self.repl_threads {
            let _ = thread.join();
        }
        self.shared.registry.flush_snapshots();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared, io_timeout: Duration) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.queue.is_shutdown() {
                    return;
                }
                continue;
            }
        };
        if shared.queue.is_shutdown() {
            // The shutdown self-connect, or a straggler racing it: the
            // listener closes when this loop returns, so just drop it.
            return;
        }
        let _ = stream.set_read_timeout(Some(io_timeout));
        let _ = stream.set_write_timeout(Some(io_timeout));
        if let Err(mut rejected) = shared.queue.push(stream) {
            // Backpressure: answer in the acceptor rather than queueing
            // unboundedly. The write is small and the socket buffer empty,
            // so this cannot stall the accept loop in practice.
            ServerMetrics::bump(&shared.metrics.rejected_backpressure);
            ServerMetrics::bump(&shared.metrics.server_errors);
            let response = Response::json(
                503,
                error_body("backpressure", "connection queue full, retry later"),
            )
            .with_header("Retry-After", "1");
            write_and_drain(&mut rejected, &response);
        }
    }
}

/// Writes `response`, half-closes the send side, then briefly drains unread
/// request bytes. Dropping a socket with unread input makes the kernel send
/// RST, which can destroy the buffered response before the peer reads it —
/// exactly the connections answered early (backpressure `503`s, parse
/// `400`s) are the ones whose request we never read.
fn write_and_drain(stream: &mut TcpStream, response: &Response) {
    let _ = response.write_to(stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut scratch = [0u8; 4096];
    while matches!(stream.read(&mut scratch), Ok(n) if n > 0) {}
}

fn worker_loop(shared: &Shared) {
    while let Some(mut stream) = shared.queue.pop() {
        handle_connection(shared, &mut stream);
    }
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let request = match read_request(stream) {
        Ok(request) => request,
        // Peer vanished or timed out mid-request: nobody to answer.
        Err(ParseError::Io(_)) => return,
        Err(e @ ParseError::TooLarge(_)) => {
            ServerMetrics::bump(&shared.metrics.client_errors);
            write_and_drain(
                stream,
                &Response::json(413, error_body("payload_too_large", &e.to_string())),
            );
            return;
        }
        Err(e) => {
            ServerMetrics::bump(&shared.metrics.client_errors);
            write_and_drain(
                stream,
                &Response::json(400, error_body("bad_request", &e.to_string())),
            );
            return;
        }
    };
    ServerMetrics::bump(&shared.metrics.requests_total);
    let response = route(shared, &request);
    if response.status() >= 500 {
        ServerMetrics::bump(&shared.metrics.server_errors);
    } else if response.status() >= 400 {
        ServerMetrics::bump(&shared.metrics.client_errors);
    }
    let _ = response.write_to(stream);
    let _ = stream.flush();
}

fn route(shared: &Shared, req: &Request) -> Response {
    let segments = req.segments();
    // `/v1/...` is the supported surface; bare paths are deprecated
    // aliases kept for one release and flagged via the `Deprecation`
    // header (RFC 9745 style) on every answer.
    let (versioned, tail) = match segments.split_first() {
        Some((first, rest)) if *first == "v1" => (true, rest),
        _ => (false, segments.as_slice()),
    };
    let response = dispatch(shared, req, tail);
    if versioned {
        response
    } else {
        response
            .with_header("Deprecation", "true")
            .with_header("Link", "</v1>; rel=\"successor-version\"")
    }
}

fn dispatch(shared: &Shared, req: &Request, segments: &[&str]) -> Response {
    match (req.method.as_str(), segments) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["readyz"]) => handle_readyz(shared, req),
        ("GET", ["metrics"]) => {
            let datasets = shared.registry.names().len();
            let persist = shared.persist.as_deref().map(Persistence::counters);
            let repl = shared.repl.as_deref();
            let body = shared.metrics.to_json(&shared.cache.stats(), datasets, persist, repl);
            Response::json(200, body)
        }
        ("GET", ["datasets"]) => handle_list(shared),
        ("POST", ["shutdown"]) => {
            shared.trigger_shutdown();
            Response::json(200, "{\"status\":\"shutting down\"}\n")
        }
        ("POST", ["admin", "promote"]) => handle_promote(shared, req),
        ("POST", ["datasets", name]) => fence_writes(shared, &format!("/v1/datasets/{name}"))
            .unwrap_or_else(|| handle_upload(shared, name, req)),
        ("POST", ["datasets", name, "append"]) => {
            fence_writes(shared, &format!("/v1/datasets/{name}/append"))
                .unwrap_or_else(|| handle_append(shared, name, req))
        }
        ("POST", ["datasets", name, "mine"]) => handle_mine(shared, name, req),
        ("GET", ["datasets", name, "active"]) => handle_active(shared, name, req),
        _ => {
            let known = matches!(
                segments,
                ["healthz" | "readyz" | "metrics" | "datasets" | "shutdown"]
                    | ["admin", "promote"]
                    | ["datasets", _]
                    | ["datasets", _, "append" | "mine" | "active"]
            );
            if known {
                Response::json(
                    405,
                    error_body(
                        "method_not_allowed",
                        &format!("method {} not allowed here", req.method),
                    ),
                )
            } else {
                Response::json(404, error_body("not_found", &format!("no route for {}", req.path)))
            }
        }
    }
}

/// JSON string escaping for error bodies and dataset names.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The uniform error envelope: every non-2xx body is
/// `{"error":{"code":…,"message":…}}`. Codes are stable machine-readable
/// slugs (`bad_request`, `not_found`, `method_not_allowed`, `conflict`,
/// `payload_too_large`, `backpressure`, `shutting_down`, `internal`);
/// messages are human-readable and may change between releases.
fn error_body(code: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}\n",
        json_escape(code),
        json_escape(message)
    )
}

fn bad_request(message: &str) -> Response {
    Response::json(400, error_body("bad_request", message))
}

fn not_found(name: &str) -> Response {
    Response::json(404, error_body("not_found", &format!("no dataset named {name:?}")))
}

fn internal_error(message: &str) -> Response {
    Response::json(500, error_body("internal", message))
}

/// Write fencing for replicas: a follower that has not been promoted
/// answers every mutating dataset route with `421 Misdirected Request`
/// and, when the primary's HTTP address is known from its `Welcome`, a
/// `Location` header pointing at the canonical `/v1` path over there.
/// Returns `None` when writes are allowed (primary, promoted, or
/// replication not configured).
fn fence_writes(shared: &Shared, canonical_path: &str) -> Option<Response> {
    let repl = shared.repl.as_ref()?;
    if !repl.is_fenced() {
        return None;
    }
    let mut response = Response::json(
        421,
        error_body("misdirected", "this node is a read replica; send writes to the primary"),
    );
    let primary = repl.primary_http();
    if !primary.is_empty() {
        response = response.with_header("Location", format!("http://{primary}{canonical_path}"));
    }
    Some(response)
}

/// `GET /v1/readyz`: readiness as distinct from liveness. A primary (or
/// promoted replica) is ready once recovery finished — which it has by the
/// time the listener accepts. A fenced replica is ready once bootstrap
/// completed **and** its worst per-dataset seq lag at the last heartbeat
/// is within the threshold (`--max-lag`, overridable per-request with
/// `?max-lag=N`).
fn handle_readyz(shared: &Shared, req: &Request) -> Response {
    let Some(repl) = shared.repl.as_ref() else {
        return Response::json(200, "{\"ready\":true,\"role\":\"standalone\"}\n".to_string());
    };
    if !repl.is_fenced() {
        return Response::json(
            200,
            format!("{{\"ready\":true,\"role\":\"{}\"}}\n", repl.role_name()),
        );
    }
    let max_lag = match req.query_param("max-lag") {
        Some(v) => match parse_num::<u64>(v, "max-lag") {
            Ok(v) => v,
            Err(resp) => return resp,
        },
        None => repl.max_lag_seqs,
    };
    let lag = ReplMetrics::get(&repl.metrics.lag_seqs);
    if repl.is_bootstrapped() && lag <= max_lag {
        Response::json(200, format!("{{\"ready\":true,\"role\":\"replica\",\"lag_seqs\":{lag}}}\n"))
    } else {
        Response::json(
            503,
            error_body(
                "not_ready",
                &format!(
                    "replica not caught up (bootstrapped={}, lag_seqs={lag}, max={max_lag})",
                    repl.is_bootstrapped()
                ),
            ),
        )
    }
}

/// `POST /v1/admin/promote`: flips a caught-up replica into a primary.
/// The write fence lifts, the follower thread seals its stream at the next
/// loop iteration, and the journal continues at the shipped seqs — no
/// gaps, so a later node can replicate from the promoted one. Refused
/// with 409 on a node that is not a fenced replica, or one that has not
/// finished bootstrap (override with `?force=true` during disaster
/// recovery when the primary is gone for good).
fn handle_promote(shared: &Shared, req: &Request) -> Response {
    let Some(repl) = shared.repl.as_ref() else {
        return Response::json(
            409,
            error_body("conflict", "replication is not configured on this node"),
        );
    };
    let force = matches!(req.query_param("force"), Some("true") | Some("1"));
    if repl.role == ReplRole::Replica && !repl.is_promoted() && !repl.is_bootstrapped() && !force {
        return Response::json(
            409,
            error_body(
                "conflict",
                "replica has not finished bootstrap; pass force=true to promote anyway",
            ),
        );
    }
    if repl.promote() {
        Response::json(200, "{\"role\":\"promoted\",\"promoted\":true}\n".to_string())
    } else {
        Response::json(
            409,
            error_body("conflict", &format!("cannot promote a {} node", repl.role_name())),
        )
    }
}

/// Parses `"25"` as an absolute count and `"2%"` as a fraction of the
/// database length — the same grammar as the CLI's `--min-ps`.
fn parse_threshold(text: &str) -> Result<Threshold, String> {
    if let Some(pct) = text.strip_suffix('%') {
        let value: f64 = pct.parse().map_err(|e| format!("bad min-ps percentage {text:?}: {e}"))?;
        Ok(Threshold::pct(value))
    } else {
        let value: usize = text.parse().map_err(|e| format!("bad min-ps count {text:?}: {e}"))?;
        Ok(Threshold::Count(value))
    }
}

fn require_param<'r>(req: &'r Request, key: &str) -> Result<&'r str, Response> {
    req.query_param(key).ok_or_else(|| bad_request(&format!("missing query parameter {key:?}")))
}

fn parse_num<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, Response>
where
    T::Err: std::fmt::Display,
{
    text.parse().map_err(|e| bad_request(&format!("bad {what} {text:?}: {e}")))
}

/// Resolves the per/min-ps/min-rec query triple against a database length.
fn resolve_params(req: &Request, db_len: usize) -> Result<ResolvedParams, Response> {
    let per: Timestamp = parse_num(require_param(req, "per")?, "per")?;
    let threshold = parse_threshold(require_param(req, "min-ps")?).map_err(|e| bad_request(&e))?;
    let min_rec: usize = match req.query_param("min-rec") {
        Some(v) => parse_num(v, "min-rec")?,
        None => 1,
    };
    let params = RpParams::try_with_threshold(per, threshold, min_rec)
        .map_err(|e| bad_request(&e.to_string()))?;
    params.try_resolve(db_len).map_err(|e| bad_request(&e.to_string()))
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

fn handle_list(shared: &Shared) -> Response {
    let mut rows = Vec::new();
    for name in shared.registry.names() {
        let Some(dataset) = shared.registry.get(&name) else { continue };
        let ds = read_recover(&dataset);
        let hot = ds.hot_params();
        rows.push(format!(
            "{{\"name\":\"{}\",\"transactions\":{},\"items\":{},\"fingerprint\":\"{:016x}\",\
             \"appends\":{},\"hot\":{{\"per\":{},\"min_ps\":{},\"min_rec\":{}}}}}",
            json_escape(&name),
            ds.db().len(),
            ds.db().item_count(),
            ds.fingerprint(),
            ds.appends(),
            hot.per,
            hot.min_ps,
            hot.min_rec,
        ));
    }
    Response::json(200, format!("[{}]\n", rows.join(",")))
}

fn handle_upload(shared: &Shared, name: &str, req: &Request) -> Response {
    if !valid_name(name) {
        return bad_request("dataset names are 1-64 chars of [A-Za-z0-9._-]");
    }
    let db = match decode_dataset_body(&req.body) {
        Ok(db) => db,
        Err(e) => return bad_request(&e),
    };
    // Hot parameters fix what the incremental scanners are maintained for;
    // min-ps must be an absolute count here (a percentage would drift as
    // the stream grows).
    let hot = {
        let per: Timestamp = match req.query_param("per") {
            Some(v) => match parse_num(v, "per") {
                Ok(v) => v,
                Err(resp) => return resp,
            },
            None => 1,
        };
        let min_ps: usize = match req.query_param("min-ps") {
            Some(v) => match parse_num(v, "hot min-ps (absolute count)") {
                Ok(v) => v,
                Err(resp) => return resp,
            },
            None => 2,
        };
        let min_rec: usize = match req.query_param("min-rec") {
            Some(v) => match parse_num(v, "min-rec") {
                Ok(v) => v,
                Err(resp) => return resp,
            },
            None => 2,
        };
        ResolvedParams::new(per, min_ps, min_rec)
    };
    let replace = match req.query_param("replace") {
        None | Some("false") | Some("0") => false,
        Some("true") | Some("1") => true,
        Some(other) => return bad_request(&format!("bad replace value {other:?} (true|false)")),
    };
    let transactions = db.len();
    let items = db.item_count();
    match shared.registry.register(name, db, hot, replace) {
        Ok(fingerprint) => Response::json(
            201,
            format!(
                "{{\"name\":\"{}\",\"transactions\":{transactions},\"items\":{items},\
                 \"fingerprint\":\"{fingerprint:016x}\"}}\n",
                json_escape(name)
            ),
        ),
        Err(RegisterError::Exists) => Response::json(
            409,
            error_body(
                "conflict",
                &format!("dataset {name:?} already exists; pass replace=true to overwrite"),
            ),
        ),
        Err(RegisterError::Invalid(e)) => bad_request(&e),
        Err(RegisterError::Wal(e)) => internal_error(&format!("journalling registration: {e}")),
    }
}

/// Worker count for append-driven delta mines: a modest slice of the
/// machine, since the frontier is usually narrow and the append handler
/// holds the dataset's write lock while patching.
pub(crate) fn delta_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(4)
}

/// Refreshes the hot-params cache entry in place after a dataset change:
/// when the pattern store can absorb the change as a dirty-frontier delta,
/// re-mine incrementally and patch the entry from `old_fingerprint` to the
/// dataset's current fingerprint. Returns whether the patch landed; the
/// caller is responsible for invalidating the old fingerprint otherwise.
/// Shared between the append handler and the replication follower so a
/// replica's cache stays exactly as warm as the primary's.
pub(crate) fn patch_hot_cache(shared: &Shared, ds: &Dataset, old_fingerprint: u64) -> bool {
    if !ds.delta_applicable() {
        return false;
    }
    let control = RunControl::new().with_cancel(shared.cancel.clone());
    let mut scratch = MineScratch::default();
    let (result, abort, dstats) = ds.mine_hot_delta(&control, &mut scratch, delta_threads());
    shared.metrics.absorb_delta(&dstats);
    if abort.is_some() {
        return false;
    }
    let mut body = Vec::new();
    if write_patterns_json(&mut body, ds.db().items(), &result.patterns).is_err() {
        return false;
    }
    shared.cache.patch(
        old_fingerprint,
        ds.fingerprint(),
        ds.hot_params(),
        Arc::new(CachedResult::new(body, result.patterns)),
    );
    ServerMetrics::bump(&shared.metrics.appends_patched);
    true
}

fn handle_append(shared: &Shared, name: &str, req: &Request) -> Response {
    let Some(dataset) = shared.registry.get(name) else {
        return not_found(name);
    };
    let rows = match parse_append_body(&req.body) {
        Ok(rows) => rows,
        Err(e) => return bad_request(&e),
    };
    let mut ds = write_recover(&dataset);
    let old_fingerprint = ds.fingerprint();
    let before = ds.db().len();
    // lint:allow(lock-order): journal-before-mutate — the WAL append happens under the dataset lock so the journal and in-memory state advance in lockstep (DESIGN.md §5); fsync policy bounds the hold time
    let outcome = ds.append_lines(&rows);
    let appended = ds.db().len() - before;
    let fingerprint = ds.fingerprint();
    let transactions = ds.db().len();
    // Patch-in-place: when the append landed cleanly and the dataset's
    // pattern store can absorb it as a dirty-frontier delta, refresh the
    // hot-params cache entry instead of dropping it — the next `/mine` at
    // the hot parameters is a cache hit, not a full re-mine.
    let mut patched = false;
    if outcome.is_ok() && fingerprint != old_fingerprint {
        patched = patch_hot_cache(shared, &ds, old_fingerprint);
    }
    drop(ds);
    // The old content is retired even when the append failed part-way:
    // whatever prefix landed already changed the fingerprint.
    if !patched && fingerprint != old_fingerprint {
        shared.cache.invalidate_fingerprint(old_fingerprint);
    }
    ServerMetrics::bump(&shared.metrics.appends);
    shared.metrics.appended_transactions.fetch_add(appended as u64, Ordering::Relaxed);
    match outcome {
        Ok(()) => Response::json(
            200,
            format!(
                "{{\"appended\":{appended},\"transactions\":{transactions},\
                 \"fingerprint\":\"{fingerprint:016x}\",\"patched\":{patched}}}\n"
            ),
        ),
        // A time regression conflicts with the stream's append-only order.
        Err(e @ AppendError::Order(_)) => {
            Response::json(409, error_body("conflict", &e.to_string()))
        }
        // The WAL write failed before anything was applied.
        Err(e @ AppendError::Wal(_)) => internal_error(&e.to_string()),
    }
}

fn handle_mine(shared: &Shared, name: &str, req: &Request) -> Response {
    let Some(dataset) = shared.registry.get(name) else {
        return not_found(name);
    };
    let timeout = match req.query_param("timeout").map(parse_duration).transpose() {
        Ok(t) => t,
        Err(e) => return bad_request(&e),
    };
    let threads: usize = match req.query_param("threads") {
        Some(v) => match parse_num::<usize>(v, "threads") {
            Ok(v) => v.clamp(1, 16),
            Err(resp) => return resp,
        },
        None => 1,
    };
    let scratch_budget = match req.query_param("scratch-mb") {
        Some(v) => match parse_num::<usize>(v, "scratch-mb") {
            Ok(mb) => Some(mb.saturating_mul(1 << 20)),
            Err(resp) => return resp,
        },
        None => None,
    };

    // Hold the read lock for the whole mine: appends to *this* dataset wait,
    // other datasets are untouched.
    let ds = read_recover(&dataset);
    let resolved = match resolve_params(req, ds.db().len()) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let fingerprint = ds.fingerprint();
    let cache_key = fingerprint ^ resolved.cache_key();

    // lint:allow(lock-order): `cache.get` is ResultCache::get, which the name-based resolver also links to Registry::get — the registry map is never touched under the dataset lock; the real dataset -> cache.state order is consistent everywhere
    if let Some(hit) = shared.cache.get(fingerprint, resolved) {
        return Response::json(200, hit.body.as_ref().clone())
            .with_header("X-Rpm-Cache", "hit")
            .with_header("X-Rpm-Cache-Key", format!("{cache_key:016x}"))
            .with_header("X-Rpm-Patterns", hit.patterns.len().to_string());
    }

    ServerMetrics::bump(&shared.metrics.mine_runs);
    let mut control = RunControl::new().with_cancel(shared.cancel.clone());
    if let Some(t) = timeout {
        control = control.with_timeout(t);
    }
    if let Some(bytes) = scratch_budget {
        control = control.with_scratch_budget(bytes);
    }

    let (result, abort) = if resolved == ds.hot_params() {
        // The dataset's live scanners already hold the first-scan summaries
        // for exactly these parameters, and the pattern store may hold the
        // previous complete result plus its measure checkpoints: skip the
        // scan, re-measure only the tail-dirtied candidates (on up to
        // `threads` workers), and splice the clean patterns.
        ServerMetrics::bump(&shared.metrics.mine_fastpath);
        // lint:allow(no-raw-clock-in-hot-path): per-request wall measurement for metrics, outside the recursion
        let started = Instant::now();
        let mut scratch = MineScratch::default();
        let (result, abort, dstats) = ds.mine_hot_delta(&control, &mut scratch, threads);
        shared.metrics.absorb_delta(&dstats);
        shared.metrics.absorb_wall(
            started.elapsed(),
            result.stats.candidates_checked,
            result.patterns.len(),
        );
        ServerMetrics::bump(if abort.is_some() {
            &shared.metrics.mine_partial
        } else {
            &shared.metrics.mine_complete
        });
        (result, abort)
    } else {
        let collector = Arc::new(MetricsCollector::new());
        let session = match MiningSession::builder()
            .resolved(resolved)
            .threads(threads)
            .control(control)
            .observer(collector.clone())
            .build()
        {
            Ok(session) => session,
            Err(e) => return bad_request(&e.to_string()),
        };
        let outcome = match session.mine(ds.db()) {
            Ok(outcome) => outcome,
            Err(e) => return bad_request(&e.to_string()),
        };
        shared.metrics.absorb_engine(&collector.snapshot());
        let abort = outcome.abort_reason();
        (outcome.into_result(), abort)
    };

    let mut body = Vec::new();
    if write_patterns_json(&mut body, ds.db().items(), &result.patterns).is_err() {
        return internal_error("serialising patterns failed");
    }
    let n_patterns = result.patterns.len();
    let base = |status: u16, body: Vec<u8>| {
        Response::json(status, body)
            .with_header("X-Rpm-Cache", "miss")
            .with_header("X-Rpm-Cache-Key", format!("{cache_key:016x}"))
            .with_header("X-Rpm-Patterns", n_patterns.to_string())
    };
    match abort {
        None => {
            shared.cache.insert(
                fingerprint,
                resolved,
                Arc::new(CachedResult::new(body.clone(), result.patterns)),
            );
            base(200, body)
        }
        // Partial results are sound but deadline-shaped: report, don't cache.
        Some(reason) => base(206, body).with_header("X-Rpm-Abort", reason.to_string()),
    }
}

fn handle_active(shared: &Shared, name: &str, req: &Request) -> Response {
    let Some(dataset) = shared.registry.get(name) else {
        return not_found(name);
    };
    ServerMetrics::bump(&shared.metrics.active_queries);
    let ds = read_recover(&dataset);
    let resolved = match resolve_params(req, ds.db().len()) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let fingerprint = ds.fingerprint();

    // lint:allow(lock-order): `cache.get` is ResultCache::get, which the name-based resolver also links to Registry::get — the registry map is never touched under the dataset lock; the real dataset -> cache.state order is consistent everywhere
    let (cached, cache_state) = match shared.cache.get(fingerprint, resolved) {
        Some(hit) => (hit, "hit"),
        None => {
            // Mine to completion (no per-request deadline: a partial pattern
            // set would silently answer stabbing queries wrongly). The
            // server-wide cancel token still applies.
            ServerMetrics::bump(&shared.metrics.mine_runs);
            let collector = Arc::new(MetricsCollector::new());
            let session = match MiningSession::builder()
                .resolved(resolved)
                .control(RunControl::new().with_cancel(shared.cancel.clone()))
                .observer(collector.clone())
                .build()
            {
                Ok(session) => session,
                Err(e) => return bad_request(&e.to_string()),
            };
            let outcome = match session.mine(ds.db()) {
                Ok(outcome) => outcome,
                Err(e) => return bad_request(&e.to_string()),
            };
            shared.metrics.absorb_engine(&collector.snapshot());
            if outcome.abort_reason().is_some() {
                return Response::json(
                    503,
                    error_body("shutting_down", "shutting down before mining finished"),
                );
            }
            let result = outcome.into_result();
            let mut body = Vec::new();
            if write_patterns_json(&mut body, ds.db().items(), &result.patterns).is_err() {
                return internal_error("serialising patterns failed");
            }
            let entry = Arc::new(CachedResult::new(body, result.patterns));
            shared.cache.insert(fingerprint, resolved, entry.clone());
            (entry, "miss")
        }
    };

    let index = cached.index();
    let active: Vec<RecurringPattern> = if let Some(at) = req.query_param("at") {
        let at: Timestamp = match parse_num(at, "at") {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        index.active_at(at).into_iter().cloned().collect()
    } else if let (Some(from), Some(to)) = (req.query_param("from"), req.query_param("to")) {
        let from: Timestamp = match parse_num(from, "from") {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let to: Timestamp = match parse_num(to, "to") {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        index.active_during(from, to).into_iter().cloned().collect()
    } else {
        return bad_request("pass at=ts, or from=ts&to=ts");
    };

    let mut body = Vec::new();
    if write_patterns_json(&mut body, ds.db().items(), &active).is_err() {
        return internal_error("serialising patterns failed");
    }
    Response::json(200, body)
        .with_header("X-Rpm-Cache", cache_state)
        .with_header("X-Rpm-Active", active.len().to_string())
}

// A tiny in-crate smoke test; the full loopback scenarios live in the
// workspace-level `tests/server_integration.rs`.
#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn send(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn healthz_shutdown_roundtrip() {
        let handle = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = handle.addr();
        let ok = send(addr, "GET /v1/healthz HTTP/1.1\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(!ok.contains("Deprecation"), "versioned path is not deprecated: {ok}");
        // The unversioned alias still answers, flagged as deprecated.
        let legacy = send(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(legacy.starts_with("HTTP/1.1 200 OK"), "{legacy}");
        assert!(legacy.contains("Deprecation: true"), "{legacy}");
        let missing = send(addr, "GET /v1/nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        assert!(missing.contains("\"code\":\"not_found\""), "{missing}");
        let wrong_method = send(addr, "DELETE /v1/metrics HTTP/1.1\r\n\r\n");
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");
        assert!(wrong_method.contains("\"code\":\"method_not_allowed\""), "{wrong_method}");
        let bye = send(addr, "POST /v1/shutdown HTTP/1.1\r\n\r\n");
        assert!(bye.starts_with("HTTP/1.1 200"), "{bye}");
        handle.join();
        assert!(TcpStream::connect(addr).is_err(), "listener closed after join");
    }

    #[test]
    fn upload_mine_and_active_over_loopback() {
        let handle = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = handle.addr();
        let db = rpm_timeseries::running_example_db();
        let mut text = Vec::new();
        rpm_timeseries::io::write_timestamped(&db, &mut text).unwrap();
        let upload = format!(
            "POST /v1/datasets/shop?per=2&min-ps=3&min-rec=2 HTTP/1.1\r\n\
             Content-Length: {}\r\n\r\n{}",
            text.len(),
            String::from_utf8(text).unwrap()
        );
        assert!(send(addr, &upload).starts_with("HTTP/1.1 201"), "upload");
        // Running example at (2, 3, 2) yields the paper's 8 patterns.
        let mine =
            send(addr, "POST /v1/datasets/shop/mine?per=2&min-ps=3&min-rec=2 HTTP/1.1\r\n\r\n");
        assert!(mine.starts_with("HTTP/1.1 200"), "{mine}");
        assert!(mine.contains("X-Rpm-Patterns: 8"), "{mine}");
        assert!(mine.contains("X-Rpm-Cache: miss"), "{mine}");
        // The deprecated unversioned alias hits the same cache entry.
        let again =
            send(addr, "POST /datasets/shop/mine?per=2&min-ps=3&min-rec=2 HTTP/1.1\r\n\r\n");
        assert!(again.contains("X-Rpm-Cache: hit"), "{again}");
        assert!(again.contains("Deprecation: true"), "{again}");
        let active = send(
            addr,
            "GET /v1/datasets/shop/active?per=2&min-ps=3&min-rec=2&at=5 HTTP/1.1\r\n\r\n",
        );
        assert!(active.starts_with("HTTP/1.1 200"), "{active}");
        assert!(active.contains("X-Rpm-Cache: hit"), "served from the mine's cache entry");
        handle.shutdown();
        handle.join();
    }
}
