//! A minimal HTTP/1.1 codec over `std::io` streams.
//!
//! The service speaks exactly the subset a mining daemon needs: one request
//! per connection (`Connection: close` on every response), request bodies
//! delimited by `Content-Length`, percent-decoded query strings. No chunked
//! encoding, no keep-alive, no TLS — and no dependencies, which is the
//! point: tier-1 stays offline and the crate builds from `std` alone.

use std::io::{Read, Write};

/// Upper bound on request head (request line + headers) and body sizes.
/// A mining request is a short line of query parameters; an upload is a
/// dataset, which legitimately runs to megabytes.
const MAX_HEAD_BYTES: usize = 64 * 1024;
const MAX_BODY_BYTES: usize = 256 * 1024 * 1024;

/// A parsed request: method, decoded path segments, query pairs and body.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The request path, percent-decoded, without the query string.
    pub path: String,
    /// Query parameters in arrival order, percent-decoded.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The `/`-separated path segments, empty segments dropped.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why a request could not be parsed; rendered as a 400 by the server.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed or errored before a full head arrived.
    Io(std::io::Error),
    /// The bytes were not a well-formed HTTP/1.x request.
    Malformed(String),
    /// Head or body exceeded the hard limits.
    TooLarge(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
            ParseError::TooLarge(m) => write!(f, "request too large: {m}"),
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn malformed(m: impl Into<String>) -> ParseError {
    ParseError::Malformed(m.into())
}

/// Decodes `%XX` escapes and `+`-as-space in a query component.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        // lint:allow(panic-reachability): `i < bytes.len()` is the loop condition
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Reads and parses one request from `stream`.
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, ParseError> {
    // Read until the blank line ending the head.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(malformed("connection closed before request head completed"));
        }
        // lint:allow(panic-reachability): `byte` is a fixed [u8; 1] — index 0 always exists
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge(format!("head exceeds {MAX_HEAD_BYTES} bytes")));
        }
    }
    let head_text = std::str::from_utf8(&head).map_err(|_| malformed("head is not UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| malformed("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| malformed("missing method"))?.to_uppercase();
    let target = parts.next().ok_or_else(|| malformed("missing request target"))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(malformed("expected an HTTP/1.x version")),
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| malformed("bad header line"))?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| malformed(format!("bad Content-Length {:?}", value.trim())))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge(format!("body exceeds {MAX_BODY_BYTES} bytes")));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request { method, path: percent_decode(raw_path), query: parse_query(raw_query), body })
}

/// A response under construction; consumed by [`Response::write_to`].
#[derive(Debug)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A response with the given status and an empty body.
    pub fn new(status: u16) -> Self {
        Self { status, headers: Vec::new(), body: Vec::new() }
    }

    /// Shorthand for a JSON response (sets `Content-Type`).
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self::new(status).with_header("Content-Type", "application/json").with_body(body)
    }

    /// Shorthand for a plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// The HTTP status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Sets the body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// Serialises the response (status line, headers, `Content-Length`,
    /// `Connection: close`, body) and flushes it in one write sequence.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            201 => "Created",
            206 => "Partial Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            421 => "Misdirected Request",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason);
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\nConnection: close\r\n\r\n", self.body.len()));
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        read_request(&mut cursor)
    }

    #[test]
    fn parses_request_line_query_and_body() {
        let req = parse(
            b"POST /datasets/shop/mine?per=360&min-ps=2%25&note=a+b HTTP/1.1\r\n\
              Host: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/datasets/shop/mine");
        assert_eq!(req.segments(), vec!["datasets", "shop", "mine"]);
        assert_eq!(req.query_param("per"), Some("360"));
        assert_eq!(req.query_param("min-ps"), Some("2%"), "percent-decoded");
        assert_eq!(req.query_param("note"), Some("a b"), "plus-decoded");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn missing_body_defaults_to_empty() {
        let req = parse(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.query.is_empty());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse(b"").is_err());
        assert!(parse(b"GET\r\n\r\n").is_err(), "no target");
        assert!(parse(b"GET / SPDY/3\r\n\r\n").is_err(), "wrong protocol");
        assert!(parse(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
        // Truncated body.
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").is_err());
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'x', MAX_HEAD_BYTES + 1));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(parse(&raw), Err(ParseError::TooLarge(_))));
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut buf = Vec::new();
        Response::json(206, "{\"x\":1}")
            .with_header("X-Rpm-Abort", "deadline exceeded")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 206 Partial Content\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Rpm-Abort: deadline exceeded\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"));
    }

    #[test]
    fn percent_decoding_is_lenient_on_junk() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("100%"), "100%", "dangling escape kept literally");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
