//! Service-level metrics: request counters plus engine metrics aggregated
//! across every mining run the server has executed.

use std::sync::atomic::{AtomicU64, Ordering};

use rpm_core::engine::EngineMetrics;

use crate::cache::CacheStats;
use crate::persist::PersistCounters;
use crate::replica::ReplState;

/// Monotone counters describing the server's lifetime. All fields are
/// relaxed atomics — the numbers are for observability, not coordination.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests fully parsed and routed.
    pub requests_total: AtomicU64,
    /// Requests answered with 4xx.
    pub client_errors: AtomicU64,
    /// Requests answered with 5xx (including backpressure 503s sent by the
    /// acceptor).
    pub server_errors: AtomicU64,
    /// Connections refused by the acceptor because the queue was full.
    pub rejected_backpressure: AtomicU64,
    /// `mine` requests that ran the engine (cache misses).
    pub mine_runs: AtomicU64,
    /// Engine runs that completed exhaustively.
    pub mine_complete: AtomicU64,
    /// Engine runs interrupted by a deadline or shutdown.
    pub mine_partial: AtomicU64,
    /// Engine runs that skipped the first scan via the incremental miner's
    /// live scanners (request params matched the dataset's hot params).
    pub mine_fastpath: AtomicU64,
    /// Delta-mine calls that stayed on the incremental path (dirty-frontier
    /// re-growth or an unchanged-stream no-op), across the mine fast path
    /// and append-driven cache patches.
    pub delta_mines: AtomicU64,
    /// Delta-mine calls that fell back to a full re-mine (cold store,
    /// changed params, foreign stream, or a too-wide dirty frontier).
    pub delta_full: AtomicU64,
    /// Patterns spliced unchanged from pattern stores across delta mines.
    pub delta_retained: AtomicU64,
    /// Patterns recomputed by dirty-frontier re-growth across delta mines.
    pub delta_remined: AtomicU64,
    /// Tail-window transactions scanned by checkpointed delta mines.
    pub delta_tail_tx: AtomicU64,
    /// Candidate re-measurements resumed from a stored measure checkpoint
    /// (the remainder rebuilt state by posting-list intersection).
    pub delta_checkpoint_hits: AtomicU64,
    /// High-water mark of worker threads a delta frontier re-measurement
    /// ran on.
    pub delta_parallel_workers: AtomicU64,
    /// Append requests absorbed.
    pub appends: AtomicU64,
    /// Appends that patched the hot cache entry in place via a delta mine
    /// instead of invalidating it.
    pub appends_patched: AtomicU64,
    /// Transactions ingested across appends.
    pub appended_transactions: AtomicU64,
    /// `active` stabbing queries served.
    pub active_queries: AtomicU64,
    /// Total wall time the engine spent mining, in microseconds.
    pub mining_wall_micros: AtomicU64,
    /// Candidates checked across all engine runs.
    pub candidates_checked: AtomicU64,
    /// Patterns returned across all engine runs.
    pub patterns_found: AtomicU64,
}

impl ServerMetrics {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment helper (relaxed).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one engine run's metrics into the lifetime aggregates.
    pub fn absorb_engine(&self, m: &EngineMetrics) {
        self.mining_wall_micros.fetch_add(m.total_wall().as_micros() as u64, Ordering::Relaxed);
        self.candidates_checked.fetch_add(m.stats.candidates_checked as u64, Ordering::Relaxed);
        self.patterns_found.fetch_add(m.stats.patterns_found as u64, Ordering::Relaxed);
        if m.abort.is_some() {
            Self::bump(&self.mine_partial);
        } else {
            Self::bump(&self.mine_complete);
        }
    }

    /// Folds one delta-mine outcome into the delta-vs-full counters.
    pub fn absorb_delta(&self, stats: &rpm_core::DeltaStats) {
        if stats.mode.is_delta() {
            Self::bump(&self.delta_mines);
            self.delta_retained.fetch_add(stats.retained_patterns as u64, Ordering::Relaxed);
            self.delta_remined.fetch_add(stats.remined_patterns as u64, Ordering::Relaxed);
            self.delta_tail_tx.fetch_add(stats.tail_transactions as u64, Ordering::Relaxed);
            self.delta_checkpoint_hits.fetch_add(stats.checkpoint_hits as u64, Ordering::Relaxed);
            self.delta_parallel_workers.fetch_max(stats.parallel_workers as u64, Ordering::Relaxed);
        } else {
            Self::bump(&self.delta_full);
        }
    }

    /// Records a run observed only by wall clock (the incremental fast path
    /// runs without an engine observer).
    pub fn absorb_wall(&self, wall: std::time::Duration, candidates: usize, patterns: usize) {
        self.mining_wall_micros.fetch_add(wall.as_micros() as u64, Ordering::Relaxed);
        self.candidates_checked.fetch_add(candidates as u64, Ordering::Relaxed);
        self.patterns_found.fetch_add(patterns as u64, Ordering::Relaxed);
    }

    /// Renders the `/metrics` JSON document, merging in the cache counters,
    /// the dataset count, and — when configured — the persistence and
    /// replication counter groups.
    pub fn to_json(
        &self,
        cache: &CacheStats,
        datasets: usize,
        persist: Option<&PersistCounters>,
        repl: Option<&ReplState>,
    ) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"requests_total\": {},\n", get(&self.requests_total)));
        s.push_str(&format!("  \"client_errors\": {},\n", get(&self.client_errors)));
        s.push_str(&format!("  \"server_errors\": {},\n", get(&self.server_errors)));
        s.push_str(&format!(
            "  \"rejected_backpressure\": {},\n",
            get(&self.rejected_backpressure)
        ));
        s.push_str(&format!("  \"datasets\": {datasets},\n"));
        s.push_str(&format!("  \"appends\": {},\n", get(&self.appends)));
        s.push_str(&format!("  \"appends_patched\": {},\n", get(&self.appends_patched)));
        s.push_str(&format!(
            "  \"appended_transactions\": {},\n",
            get(&self.appended_transactions)
        ));
        s.push_str(&format!("  \"active_queries\": {},\n", get(&self.active_queries)));
        s.push_str("  \"mine\": {\n");
        s.push_str(&format!("    \"runs\": {},\n", get(&self.mine_runs)));
        s.push_str(&format!("    \"complete\": {},\n", get(&self.mine_complete)));
        s.push_str(&format!("    \"partial\": {},\n", get(&self.mine_partial)));
        s.push_str(&format!("    \"fastpath\": {},\n", get(&self.mine_fastpath)));
        s.push_str(&format!("    \"delta\": {},\n", get(&self.delta_mines)));
        s.push_str(&format!("    \"delta_full\": {},\n", get(&self.delta_full)));
        s.push_str(&format!("    \"delta_retained\": {},\n", get(&self.delta_retained)));
        s.push_str(&format!("    \"delta_remined\": {},\n", get(&self.delta_remined)));
        s.push_str(&format!("    \"delta_tail_tx\": {},\n", get(&self.delta_tail_tx)));
        s.push_str(&format!(
            "    \"delta_checkpoint_hits\": {},\n",
            get(&self.delta_checkpoint_hits)
        ));
        s.push_str(&format!(
            "    \"delta_parallel_workers\": {},\n",
            get(&self.delta_parallel_workers)
        ));
        s.push_str(&format!(
            "    \"wall_ms\": {:.3},\n",
            get(&self.mining_wall_micros) as f64 / 1e3
        ));
        s.push_str(&format!("    \"candidates_checked\": {},\n", get(&self.candidates_checked)));
        s.push_str(&format!("    \"patterns_found\": {}\n", get(&self.patterns_found)));
        s.push_str("  },\n");
        s.push_str("  \"cache\": {\n");
        s.push_str(&format!("    \"hits\": {},\n", cache.hits));
        s.push_str(&format!("    \"misses\": {},\n", cache.misses));
        s.push_str(&format!("    \"evictions\": {},\n", cache.evictions));
        s.push_str(&format!("    \"invalidations\": {},\n", cache.invalidations));
        s.push_str(&format!("    \"patches\": {},\n", cache.patches));
        s.push_str(&format!("    \"entries\": {},\n", cache.entries));
        s.push_str(&format!("    \"bytes\": {}\n", cache.bytes));
        s.push_str("  }");
        if let Some(p) = persist {
            let pget = PersistCounters::get;
            s.push_str(",\n  \"persist\": {\n");
            s.push_str(&format!("    \"wal_records\": {},\n", pget(&p.wal_records)));
            s.push_str(&format!("    \"wal_bytes\": {},\n", pget(&p.wal_bytes)));
            s.push_str(&format!("    \"snapshots\": {},\n", pget(&p.snapshots)));
            s.push_str(&format!("    \"recovered_datasets\": {},\n", pget(&p.recovered_datasets)));
            s.push_str(&format!(
                "    \"torn_tail_truncations\": {}\n",
                pget(&p.torn_tail_truncations)
            ));
            s.push_str("  }");
        }
        if let Some(r) = repl {
            s.push_str(",\n  \"repl\": ");
            s.push_str(&r.metrics_json());
        }
        s.push_str("\n}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_carries_every_counter_group() {
        let m = ServerMetrics::new();
        ServerMetrics::bump(&m.requests_total);
        ServerMetrics::bump(&m.mine_runs);
        m.absorb_wall(std::time::Duration::from_millis(2), 10, 3);
        let json =
            m.to_json(&CacheStats { hits: 5, patches: 4, ..CacheStats::default() }, 2, None, None);
        assert!(json.contains("\"requests_total\": 1"));
        assert!(json.contains("\"datasets\": 2"));
        assert!(json.contains("\"hits\": 5"));
        assert!(json.contains("\"patches\": 4"));
        assert!(json.contains("\"patterns_found\": 3"));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains("\"persist\""), "no persist group without persistence");

        let counters = PersistCounters::default();
        counters.wal_records.store(12, Ordering::Relaxed);
        counters.torn_tail_truncations.store(1, Ordering::Relaxed);
        let json = m.to_json(&CacheStats::default(), 2, Some(&counters), None);
        assert!(json.contains("\"wal_records\": 12"));
        assert!(json.contains("\"torn_tail_truncations\": 1"));
        assert!(json.contains("\"snapshots\": 0"));
        assert!(json.ends_with('}'));
        assert!(!json.contains("\"repl\""), "no repl group without replication");
    }

    #[test]
    fn repl_group_rides_along_when_configured() {
        use crate::replica::{ReplMetrics, ReplRole, REPL_MAX_LAG_SEQS};
        let m = ServerMetrics::new();
        let state = ReplState::new(ReplRole::Replica, REPL_MAX_LAG_SEQS);
        ReplMetrics::bump(&state.metrics.records_applied, 9);
        let json = m.to_json(&CacheStats::default(), 0, None, Some(&state));
        assert!(json.contains("\"repl\": {"), "{json}");
        assert!(json.contains("\"records_applied\":9"), "{json}");
        assert!(json.contains("\"role\":\"replica\""), "{json}");
        assert!(json.ends_with('}'));
    }

    #[test]
    fn delta_stats_fold_into_delta_or_full() {
        use rpm_core::{DeltaMode, DeltaStats, FullReason};
        let m = ServerMetrics::new();
        let mut stats = DeltaStats {
            mode: DeltaMode::Delta,
            touched_transactions: 1,
            dirty_items: 1,
            dirty_candidates: 1,
            reachable_transactions: 2,
            retained_patterns: 7,
            remined_patterns: 3,
            tail_transactions: 5,
            checkpoint_hits: 4,
            parallel_workers: 3,
        };
        m.absorb_delta(&stats);
        stats.mode = DeltaMode::Full(FullReason::ColdStore);
        m.absorb_delta(&stats);
        let json = m.to_json(&CacheStats::default(), 1, None, None);
        assert!(json.contains("\"delta\": 1"));
        assert!(json.contains("\"delta_full\": 1"));
        assert!(json.contains("\"delta_retained\": 7"));
        assert!(json.contains("\"delta_remined\": 3"));
        assert!(json.contains("\"delta_tail_tx\": 5"));
        assert!(json.contains("\"delta_checkpoint_hits\": 4"));
        assert!(json.contains("\"delta_parallel_workers\": 3"));
    }

    #[test]
    fn engine_metrics_fold_into_complete_or_partial() {
        use rpm_core::engine::AbortReason;
        let m = ServerMetrics::new();
        m.absorb_engine(&EngineMetrics::default());
        let partial = EngineMetrics { abort: Some(AbortReason::Cancelled), ..Default::default() };
        m.absorb_engine(&partial);
        assert_eq!(m.mine_complete.load(Ordering::Relaxed), 1);
        assert_eq!(m.mine_partial.load(Ordering::Relaxed), 1);
    }
}
