//! Durable serving state: per-dataset WAL + snapshots + crash recovery.
//!
//! Layout inside the data directory (one pair of files per dataset):
//!
//! ```text
//! <data-dir>/<name>.wal    append-only journal (see [`wal`] for framing)
//! <data-dir>/<name>.snap   newest snapshot (atomic write-to-temp + rename)
//! ```
//!
//! Every registry mutation is **journalled before it is applied**: the
//! register/append record reaches the WAL (fsynced per the configured
//! [`FsyncPolicy`]) and only then mutates the in-memory miner. Periodically
//! — every [`SNAPSHOT_EVERY_DEFAULT`] records by default — the dataset is
//! folded into a snapshot carrying the last-applied sequence number, and
//! the WAL is truncated. Recovery is therefore: load the newest valid
//! snapshot, replay WAL records with `seq >` the snapshot's, truncate any
//! torn tail. A crash *between* snapshot-rename and WAL-truncate merely
//! replays records the snapshot already contains, which the sequence
//! check skips — replay is idempotent.
//!
//! This module owns formats and files; rebuilding miners and pattern
//! stores from the replayed state lives with the
//! [`Registry`](crate::registry::Registry).

mod snapshot;
pub(crate) mod wal;

pub use wal::{WalRecord, WalReplay, WAL_MAX_RECORD_BYTES};

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rpm_core::ResolvedParams;
use rpm_timeseries::{SnapshotHeader, Timestamp, TransactionDb};

/// Default WAL records folded into a snapshot before the next one is cut:
/// `SNAPSHOT_EVERY_DEFAULT = 256`.
pub const SNAPSHOT_EVERY_DEFAULT: u64 = 256;

/// The `interval` fsync policy syncs at most once per
/// `FSYNC_INTERVAL_MILLIS = 100` milliseconds of appends.
pub const FSYNC_INTERVAL_MILLIS: u64 = 100;

/// When to `fsync` the WAL after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every record: an acknowledged write survives power loss.
    #[default]
    Always,
    /// Sync at most once per [`FSYNC_INTERVAL_MILLIS`]: bounded data loss,
    /// much cheaper under bursty appends.
    Interval,
    /// Never sync explicitly; the OS flushes on its own schedule. Survives
    /// process crashes (the page cache persists) but not power loss.
    Never,
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(Self::Always),
            "interval" => Ok(Self::Interval),
            "never" => Ok(Self::Never),
            other => Err(format!("unknown fsync policy {other:?} (always|interval|never)")),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Always => "always",
            Self::Interval => "interval",
            Self::Never => "never",
        })
    }
}

/// Where and how to persist.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// The data directory (created if absent).
    pub dir: PathBuf,
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// WAL records between snapshots.
    pub snapshot_every: u64,
}

impl PersistConfig {
    /// Defaults: `always` fsync, snapshot every [`SNAPSHOT_EVERY_DEFAULT`]
    /// records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), fsync: FsyncPolicy::Always, snapshot_every: SNAPSHOT_EVERY_DEFAULT }
    }
}

/// Monotone persistence counters, surfaced through `GET /metrics`.
#[derive(Debug, Default)]
pub struct PersistCounters {
    /// WAL records written since startup.
    pub wal_records: AtomicU64,
    /// WAL bytes written since startup (framing included).
    pub wal_bytes: AtomicU64,
    /// Snapshots cut since startup.
    pub snapshots: AtomicU64,
    /// Datasets rebuilt from disk at startup.
    pub recovered_datasets: AtomicU64,
    /// Torn/corrupt WAL tails truncated at startup.
    pub torn_tail_truncations: AtomicU64,
}

impl PersistCounters {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// Relaxed load of one counter (reader side).
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// The shared persistence coordinator: configuration, data directory and
/// counters. Per-dataset write state lives in each [`DatasetLog`].
#[derive(Debug)]
pub struct Persistence {
    config: PersistConfig,
    counters: PersistCounters,
}

impl Persistence {
    /// Opens (creating if needed) the data directory.
    pub fn open(config: PersistConfig) -> std::io::Result<Arc<Self>> {
        std::fs::create_dir_all(&config.dir)?;
        Ok(Arc::new(Self { config, counters: PersistCounters::default() }))
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// The live counters.
    pub fn counters(&self) -> &PersistCounters {
        &self.counters
    }

    fn wal_path(&self, name: &str) -> PathBuf {
        self.config.dir.join(format!("{name}.wal"))
    }

    /// Dataset names with any on-disk state (`.wal` or `.snap`), sorted.
    pub fn dataset_names(&self) -> std::io::Result<Vec<String>> {
        let mut names = BTreeSet::new();
        for entry in std::fs::read_dir(&self.config.dir)? {
            let entry = entry?;
            let file_name = entry.file_name();
            let Some(file_name) = file_name.to_str() else { continue };
            for suffix in [".wal", ".snap"] {
                if let Some(stem) = file_name.strip_suffix(suffix) {
                    if !stem.is_empty() {
                        names.insert(stem.to_string());
                    }
                }
            }
        }
        Ok(names.into_iter().collect())
    }

    /// Loads `name`'s snapshot if present and valid.
    pub fn load_snapshot(&self, name: &str) -> Option<(SnapshotHeader, TransactionDb)> {
        snapshot::load_snapshot(&self.config.dir, name)
    }

    /// Replays `name`'s WAL, repairing torn tails (and counting them).
    /// `None` when no WAL file exists.
    pub fn read_wal(&self, name: &str) -> std::io::Result<Option<WalReplay>> {
        let path = self.wal_path(name);
        if !path.exists() {
            return Ok(None);
        }
        let replay = wal::read_and_repair(&path)?;
        if replay.truncated_tail {
            PersistCounters::bump(&self.counters.torn_tail_truncations, 1);
            // Attribute the truncation: multi-dataset recovery logs are
            // useless without the dataset name and the byte offset the
            // file was cut back to.
            eprintln!(
                "wal: dataset {name:?}: torn tail truncated at offset {} of {} (last intact seq {})",
                replay.valid_len,
                path.display(),
                replay.records.last().map_or(0, WalRecord::seq),
            );
        }
        Ok(Some(replay))
    }

    /// Scans `name`'s WAL **read-only** — no truncation, no counter bumps.
    /// The replication catch-up path reads a live primary's log with this
    /// while holding the dataset's read lock (appends take the write lock,
    /// so the file is quiescent); repairing here would race the writer.
    pub fn read_wal_tail(&self, name: &str) -> std::io::Result<Option<WalReplay>> {
        let path = self.wal_path(name);
        if !path.exists() {
            return Ok(None);
        }
        Ok(Some(wal::read_records(&path)?))
    }

    /// The raw bytes of `name`'s newest on-disk snapshot, if one exists —
    /// the export side of replication bootstrap. Returned verbatim (the
    /// `RPMS` envelope), so the follower validates it exactly like local
    /// recovery would.
    pub fn snapshot_bytes(&self, name: &str) -> Option<Vec<u8>> {
        std::fs::read(snapshot::snapshot_path(&self.config.dir, name)).ok()
    }
}

/// The per-dataset durability cursor: the open WAL writer plus the
/// sequence bookkeeping that decides when to snapshot. Owned by the
/// `Dataset` behind its write lock, so all methods take `&mut self` and
/// need no further synchronisation.
#[derive(Debug)]
pub struct DatasetLog {
    persist: Arc<Persistence>,
    name: String,
    writer: wal::WalWriter,
    /// Last sequence number written (or recovered).
    seq: u64,
    /// WAL records since the last snapshot — the snapshot trigger.
    records_since_snapshot: u64,
}

impl DatasetLog {
    /// Fresh log for a brand-new registration: clears any stale on-disk
    /// state for `name` and journals the register record.
    pub fn create(
        persist: &Arc<Persistence>,
        name: &str,
        db: &TransactionDb,
        hot: ResolvedParams,
    ) -> std::io::Result<Self> {
        snapshot::remove_snapshot(persist.dir(), name)?;
        let writer = wal::WalWriter::open(&persist.wal_path(name), persist.config.fsync, true)?;
        let mut log = Self {
            persist: persist.clone(),
            name: name.to_string(),
            writer,
            seq: 0,
            records_since_snapshot: 0,
        };
        log.log_register(db, hot)?;
        Ok(log)
    }

    /// Re-attaches to an already-recovered dataset's log: appends continue
    /// the recovered sequence in the existing file.
    pub fn resume(
        persist: &Arc<Persistence>,
        name: &str,
        seq: u64,
        records_since_snapshot: u64,
    ) -> std::io::Result<Self> {
        let writer = wal::WalWriter::open(&persist.wal_path(name), persist.config.fsync, false)?;
        Ok(Self {
            persist: persist.clone(),
            name: name.to_string(),
            writer,
            seq,
            records_since_snapshot,
        })
    }

    /// Bootstraps a **replica** dataset from a snapshot shipped by the
    /// primary: persists the snapshot locally (so a replica restart
    /// recovers without re-syncing), opens a fresh WAL, and positions the
    /// sequence cursor at the snapshot's — shipped records continue the
    /// primary's numbering verbatim, which is what makes promotion a
    /// gap-free continuation of the journal.
    pub fn adopt_snapshot(
        persist: &Arc<Persistence>,
        name: &str,
        header: &SnapshotHeader,
        db: &TransactionDb,
    ) -> std::io::Result<Self> {
        snapshot::write_snapshot(persist.dir(), name, header, db)?;
        PersistCounters::bump(&persist.counters.snapshots, 1);
        let writer = wal::WalWriter::open(&persist.wal_path(name), persist.config.fsync, true)?;
        Ok(Self {
            persist: persist.clone(),
            name: name.to_string(),
            writer,
            seq: header.seq,
            records_since_snapshot: 0,
        })
    }

    /// An empty log at sequence zero, clearing any stale on-disk state —
    /// the replica-side landing pad for a shipped `Register` record (which
    /// arrives with the primary's sequence number and is journalled via
    /// [`DatasetLog::log_shipped`]).
    pub fn fresh(persist: &Arc<Persistence>, name: &str) -> std::io::Result<Self> {
        snapshot::remove_snapshot(persist.dir(), name)?;
        let writer = wal::WalWriter::open(&persist.wal_path(name), persist.config.fsync, true)?;
        Ok(Self {
            persist: persist.clone(),
            name: name.to_string(),
            writer,
            seq: 0,
            records_since_snapshot: 0,
        })
    }

    /// Journals a record shipped by the primary **verbatim**, preserving
    /// its sequence number. The caller is responsible for the seq filter
    /// (skipping records at or below the current cursor).
    pub fn log_shipped(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.write(record)
    }

    /// The dataset this log belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The last sequence number journalled.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Journals a (re)registration. On the `replace=true` path this writes
    /// into the existing log with a continuing sequence number; recovery
    /// treats a register record as a full reset of everything before it.
    pub fn log_register(&mut self, db: &TransactionDb, hot: ResolvedParams) -> std::io::Result<()> {
        let record = WalRecord::Register {
            seq: self.seq + 1,
            per: hot.per,
            min_ps: hot.min_ps as u64,
            min_rec: hot.min_rec as u64,
            db: db.clone(),
        };
        self.write(&record)
    }

    /// Journals one append request's rows. Called **before** the miner
    /// mutates, so an acknowledged append is always recoverable.
    pub fn log_append(&mut self, rows: &[(Timestamp, Vec<String>)]) -> std::io::Result<()> {
        let record = WalRecord::Append { seq: self.seq + 1, rows: rows.to_vec() };
        self.write(&record)
    }

    fn write(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let bytes = self.writer.append(record)?;
        self.seq = record.seq();
        self.records_since_snapshot += 1;
        PersistCounters::bump(&self.persist.counters.wal_records, 1);
        PersistCounters::bump(&self.persist.counters.wal_bytes, bytes);
        Ok(())
    }

    /// Cuts a snapshot if enough records have accumulated since the last
    /// one. Returns whether a snapshot was written.
    pub fn maybe_snapshot(
        &mut self,
        db: &TransactionDb,
        hot: ResolvedParams,
        appends: u64,
    ) -> std::io::Result<bool> {
        if self.records_since_snapshot < self.persist.config.snapshot_every {
            return Ok(false);
        }
        self.force_snapshot(db, hot, appends)?;
        Ok(true)
    }

    /// Unconditionally snapshots the dataset and truncates its WAL — the
    /// shutdown flush.
    pub fn force_snapshot(
        &mut self,
        db: &TransactionDb,
        hot: ResolvedParams,
        appends: u64,
    ) -> std::io::Result<()> {
        let header = SnapshotHeader {
            seq: self.seq,
            per: hot.per,
            min_ps: hot.min_ps as u64,
            min_rec: hot.min_rec as u64,
            appends,
        };
        snapshot::write_snapshot(self.persist.dir(), &self.name, &header, db)?;
        // If truncation fails the WAL merely holds records the snapshot
        // already covers; the sequence check skips them on replay.
        self.writer.truncate()?;
        self.records_since_snapshot = 0;
        PersistCounters::bump(&self.persist.counters.snapshots, 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_persist(tag: &str, snapshot_every: u64) -> Arc<Persistence> {
        let dir =
            std::env::temp_dir().join(format!("rpm_persist_tests-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = PersistConfig::new(dir);
        config.snapshot_every = snapshot_every;
        Persistence::open(config).unwrap()
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        for (s, want) in [
            ("always", FsyncPolicy::Always),
            ("interval", FsyncPolicy::Interval),
            ("never", FsyncPolicy::Never),
        ] {
            let got: FsyncPolicy = s.parse().unwrap();
            assert_eq!(got, want);
            assert_eq!(got.to_string(), s);
        }
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Always);
    }

    #[test]
    fn log_lifecycle_registers_appends_and_snapshots() {
        let persist = temp_persist("lifecycle", 3);
        let db = rpm_timeseries::running_example_db();
        let hot = ResolvedParams::new(2, 3, 2);
        let mut log = DatasetLog::create(&persist, "demo", &db, hot).unwrap();
        assert_eq!(log.seq(), 1);
        log.log_append(&[(20, vec!["a".into()])]).unwrap();
        assert!(!log.maybe_snapshot(&db, hot, 1).unwrap(), "2 records < snapshot_every of 3");
        log.log_append(&[(21, vec!["b".into()])]).unwrap();
        assert!(log.maybe_snapshot(&db, hot, 2).unwrap(), "3rd record crosses the trigger");
        assert_eq!(PersistCounters::get(&persist.counters().snapshots), 1);
        assert_eq!(PersistCounters::get(&persist.counters().wal_records), 3);

        // WAL was truncated by the snapshot; replay finds no records but
        // the snapshot carries seq=3.
        let replay = persist.read_wal("demo").unwrap().unwrap();
        assert!(replay.records.is_empty());
        let (header, _) = persist.load_snapshot("demo").unwrap();
        assert_eq!(header.seq, 3);
        assert_eq!(header.appends, 2);
        assert_eq!(persist.dataset_names().unwrap(), vec!["demo".to_string()]);
        std::fs::remove_dir_all(persist.dir()).unwrap();
    }

    #[test]
    fn create_clears_stale_state_and_resume_continues_seq() {
        let persist = temp_persist("recreate", 100);
        let db = rpm_timeseries::running_example_db();
        let hot = ResolvedParams::new(2, 3, 2);
        let mut log = DatasetLog::create(&persist, "demo", &db, hot).unwrap();
        log.log_append(&[(20, vec!["a".into()])]).unwrap();
        log.force_snapshot(&db, hot, 1).unwrap();
        drop(log);

        // Re-creating wipes both files and restarts the sequence.
        let log = DatasetLog::create(&persist, "demo", &db, hot).unwrap();
        assert_eq!(log.seq(), 1);
        assert!(persist.load_snapshot("demo").is_none(), "stale snapshot removed");
        drop(log);

        // Resuming continues where recovery left off.
        let mut log = DatasetLog::resume(&persist, "demo", 7, 2).unwrap();
        log.log_append(&[(30, vec!["z".into()])]).unwrap();
        assert_eq!(log.seq(), 8);
        let replay = persist.read_wal("demo").unwrap().unwrap();
        assert_eq!(replay.records.last().unwrap().seq(), 8);
        std::fs::remove_dir_all(persist.dir()).unwrap();
    }
}
