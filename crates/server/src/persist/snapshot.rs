//! Atomic on-disk snapshots of a dataset's database.
//!
//! A snapshot is the versioned envelope produced by
//! [`rpm_timeseries::snapshot_to_bytes`]: an `RPMS` header carrying the
//! last-applied WAL sequence number and the hot mining parameters, followed
//! by the canonical `.rpmb` encoding of the database. Writes are atomic —
//! serialise to `<name>.snap.tmp`, fsync, `rename(2)` over `<name>.snap`,
//! fsync the directory — so a crash at any point leaves either the old
//! snapshot or the new one, never a torn file.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use rpm_timeseries::{snapshot_from_bytes, snapshot_to_bytes, SnapshotHeader, TransactionDb};

/// The final path of `name`'s snapshot inside `dir`.
pub fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.snap"))
}

/// Atomically replaces `name`'s snapshot with `header` + `db`.
pub fn write_snapshot(
    dir: &Path,
    name: &str,
    header: &SnapshotHeader,
    db: &TransactionDb,
) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.snap.tmp"));
    let bytes = snapshot_to_bytes(header, db);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, snapshot_path(dir, name))?;
    // Persist the rename itself. Directory fsync is best-effort: some
    // filesystems refuse to open a directory for syncing, and the rename
    // is already atomic for crash-consistency of the *content*.
    if let Ok(dirfd) = File::open(dir) {
        let _ = dirfd.sync_all();
    }
    Ok(())
}

/// Loads `name`'s snapshot. `None` when the file is missing **or**
/// invalid — a corrupt snapshot is skipped and recovery falls back to
/// replaying the WAL from its start.
pub fn load_snapshot(dir: &Path, name: &str) -> Option<(SnapshotHeader, TransactionDb)> {
    let bytes = fs::read(snapshot_path(dir, name)).ok()?;
    snapshot_from_bytes(&bytes).ok()
}

/// Removes `name`'s snapshot and any leftover temp file (dataset deletion
/// or a fresh registration over stale on-disk state). Missing files are
/// fine.
pub fn remove_snapshot(dir: &Path, name: &str) -> std::io::Result<()> {
    for path in [snapshot_path(dir, name), dir.join(format!("{name}.snap.tmp"))] {
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpm_timeseries::running_example_db;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rpm_snap_tests-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let db = running_example_db();
        let header = SnapshotHeader { seq: 41, per: 2, min_ps: 3, min_rec: 2, appends: 7 };
        write_snapshot(&dir, "demo", &header, &db).unwrap();
        let (got_header, got_db) = load_snapshot(&dir, "demo").unwrap();
        assert_eq!(got_header, header);
        assert_eq!(rpm_timeseries::fingerprint(&got_db), rpm_timeseries::fingerprint(&db));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_loads_as_none() {
        let dir = temp_dir("corrupt");
        let db = running_example_db();
        let header = SnapshotHeader { seq: 1, per: 2, min_ps: 3, min_rec: 2, appends: 0 };
        write_snapshot(&dir, "demo", &header, &db).unwrap();
        let path = snapshot_path(&dir, "demo");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        // A flipped byte either breaks decoding (None) or survives only by
        // landing in a spot the codec tolerates; it must never panic.
        let _ = load_snapshot(&dir, "demo");
        fs::write(&path, b"definitely not a snapshot").unwrap();
        assert!(load_snapshot(&dir, "demo").is_none());
        assert!(load_snapshot(&dir, "missing").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_and_remove_is_idempotent() {
        let dir = temp_dir("rewrite");
        let db = running_example_db();
        let h1 = SnapshotHeader { seq: 1, per: 2, min_ps: 3, min_rec: 2, appends: 0 };
        let h2 = SnapshotHeader { seq: 9, per: 2, min_ps: 3, min_rec: 2, appends: 4 };
        write_snapshot(&dir, "demo", &h1, &db).unwrap();
        write_snapshot(&dir, "demo", &h2, &db).unwrap();
        let (got, _) = load_snapshot(&dir, "demo").unwrap();
        assert_eq!(got, h2);
        remove_snapshot(&dir, "demo").unwrap();
        remove_snapshot(&dir, "demo").unwrap();
        assert!(load_snapshot(&dir, "demo").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
