//! The per-dataset append-only write-ahead log.
//!
//! Framing: every record is `[len: u32 LE][crc: u32 LE][payload]`, where
//! `crc` is CRC-32 (IEEE) over the payload. Records are only ever appended;
//! the file is truncated to zero after a successful snapshot (the snapshot
//! header's sequence number keeps replay idempotent when a crash lands
//! between the two steps).
//!
//! Recovery reads records in order and stops at the first frame that does
//! not check out — a short header, a length overrunning the file, a CRC
//! mismatch, or an undecodable payload. Everything before that point is
//! replayed; everything from it on is a *torn tail* (the classic shape of
//! a crash mid-`write`) and is physically truncated away so the next
//! append extends a clean log.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::time::{Duration, Instant};

use rpm_timeseries::{from_bytes, to_bytes, Timestamp, TransactionDb};

use super::{FsyncPolicy, FSYNC_INTERVAL_MILLIS};

/// Hard cap on a single record's payload. Register records embed a whole
/// database in [`rpm_timeseries::to_bytes`] form, so the cap matches the
/// HTTP body cap; its real job is keeping recovery from allocating
/// gigabytes on a corrupt length prefix.
pub const WAL_MAX_RECORD_BYTES: usize = 256 * 1024 * 1024;

/// Bytes of framing ahead of every payload (length + checksum).
pub const WAL_FRAME_BYTES: usize = 8;

const TAG_REGISTER: u8 = 1;
const TAG_APPEND: u8 = 2;

/// One durable mutation of a dataset.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// Dataset (re)creation: resets the stream to `db`, mined at the given
    /// hot parameters. Also journalled by `replace=true` re-registration,
    /// in which case it supersedes everything before it in the log.
    Register {
        /// Monotone per-dataset sequence number.
        seq: u64,
        /// Hot mining period.
        per: Timestamp,
        /// Hot minimum periodic-support (absolute count).
        min_ps: u64,
        /// Hot minimum recurrence.
        min_rec: u64,
        /// The uploaded content, already normalised by the miner.
        db: TransactionDb,
    },
    /// The rows of one append request, in arrival order.
    Append {
        /// Monotone per-dataset sequence number.
        seq: u64,
        /// `(timestamp, labels)` rows exactly as the handler parsed them.
        rows: Vec<(Timestamp, Vec<String>)>,
    },
}

impl WalRecord {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Register { seq, .. } | WalRecord::Append { seq, .. } => *seq,
        }
    }
}

impl PartialEq for WalRecord {
    /// Structural equality; databases compare by canonical `.rpmb`
    /// encoding (test and diagnostic use — not a hot path).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                WalRecord::Register { seq, per, min_ps, min_rec, db },
                WalRecord::Register {
                    seq: seq2,
                    per: per2,
                    min_ps: min_ps2,
                    min_rec: min_rec2,
                    db: db2,
                },
            ) => {
                seq == seq2
                    && per == per2
                    && min_ps == min_ps2
                    && min_rec == min_rec2
                    && to_bytes(db) == to_bytes(db2)
            }
            (WalRecord::Append { seq, rows }, WalRecord::Append { seq: seq2, rows: rows2 }) => {
                seq == seq2 && rows == rows2
            }
            _ => false,
        }
    }
}

// --- CRC-32 (IEEE 802.3, reflected) -------------------------------------

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// CRC-32 of `data` — the per-record checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        // lint:allow(panic-reachability): the index is masked to 0..256 and the table has 256 entries
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- payload codec -------------------------------------------------------
// The varint/zigzag primitives are shared with the replication protocol
// (`crate::replica::proto`), whose messages wrap WAL payloads in the same
// `[len][crc32][payload]` framing.

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(crate) struct Cursor<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn get_u8(&mut self) -> Option<u8> {
        let b = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    pub(crate) fn get_slice(&mut self, len: usize) -> Option<&'a [u8]> {
        if self.data.len() - self.pos < len {
            return None;
        }
        // lint:allow(panic-reachability): the length check above guarantees pos + len <= data.len()
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Some(s)
    }

    pub(crate) fn get_varint(&mut self) -> Option<u64> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return None;
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(out);
            }
            shift += 7;
        }
    }

    pub(crate) fn rest(self) -> &'a [u8] {
        // lint:allow(panic-reachability): pos only advances past bounds-checked reads, so pos <= data.len()
        &self.data[self.pos..]
    }
}

/// Serialises a record's payload (the CRC-protected bytes).
pub fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match record {
        WalRecord::Register { seq, per, min_ps, min_rec, db } => {
            buf.push(TAG_REGISTER);
            put_varint(&mut buf, *seq);
            put_varint(&mut buf, zigzag(*per));
            put_varint(&mut buf, *min_ps);
            put_varint(&mut buf, *min_rec);
            buf.extend_from_slice(&to_bytes(db));
        }
        WalRecord::Append { seq, rows } => {
            buf.push(TAG_APPEND);
            put_varint(&mut buf, *seq);
            put_varint(&mut buf, rows.len() as u64);
            for (ts, labels) in rows {
                put_varint(&mut buf, zigzag(*ts));
                put_varint(&mut buf, labels.len() as u64);
                for label in labels {
                    put_varint(&mut buf, label.len() as u64);
                    buf.extend_from_slice(label.as_bytes());
                }
            }
        }
    }
    buf
}

/// Decodes a payload whose CRC already checked out. `None` means the
/// payload is structurally invalid despite the checksum (e.g. written by a
/// future format) — recovery treats the record as unreadable.
pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor { data: payload, pos: 0 };
    match c.get_u8()? {
        TAG_REGISTER => {
            let seq = c.get_varint()?;
            let per = unzigzag(c.get_varint()?);
            let min_ps = c.get_varint()?;
            let min_rec = c.get_varint()?;
            let db = from_bytes(c.rest()).ok()?;
            Some(WalRecord::Register { seq, per, min_ps, min_rec, db })
        }
        TAG_APPEND => {
            let seq = c.get_varint()?;
            let n_rows = c.get_varint()? as usize;
            if n_rows > payload.len() {
                return None; // a row costs ≥ 1 byte; reject absurd counts
            }
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let ts = unzigzag(c.get_varint()?);
                let n_labels = c.get_varint()? as usize;
                if n_labels > payload.len() {
                    return None;
                }
                let mut labels = Vec::with_capacity(n_labels);
                for _ in 0..n_labels {
                    let len = c.get_varint()? as usize;
                    let raw = c.get_slice(len)?;
                    labels.push(std::str::from_utf8(raw).ok()?.to_string());
                }
                rows.push((ts, labels));
            }
            Some(WalRecord::Append { seq, rows })
        }
        _ => None,
    }
}

// --- reading & repair ----------------------------------------------------

/// The outcome of reading a WAL back at startup.
#[derive(Debug)]
pub struct WalReplay {
    /// Every intact record, in log order.
    pub records: Vec<WalRecord>,
    /// Bytes of intact prefix (the post-repair file length).
    pub valid_len: u64,
    /// Whether a torn tail was found past the intact prefix
    /// ([`read_and_repair`] truncates it away; [`read_records`] leaves the
    /// file untouched).
    pub truncated_tail: bool,
}

/// Reads every intact record of the log at `path` **without touching the
/// file** — the scan used for replication catch-up, where the log belongs
/// to a live primary and must never be modified by a reader.
pub fn read_records(path: &Path) -> std::io::Result<WalReplay> {
    let data = std::fs::read(path)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if data.len() - pos < WAL_FRAME_BYTES {
            break;
        }
        let mut word = [0u8; 4];
        // lint:allow(panic-reachability): the frame-size check above guarantees WAL_FRAME_BYTES (8) bytes remain
        word.copy_from_slice(&data[pos..pos + 4]);
        let len = u32::from_le_bytes(word) as usize;
        // lint:allow(panic-reachability): same frame-size guarantee as above
        word.copy_from_slice(&data[pos + 4..pos + 8]);
        let crc = u32::from_le_bytes(word);
        if len > WAL_MAX_RECORD_BYTES || data.len() - pos - WAL_FRAME_BYTES < len {
            break; // torn mid-payload (or absurd length prefix)
        }
        // lint:allow(panic-reachability): the torn-payload check above guarantees len bytes remain after the frame
        let payload = &data[pos + WAL_FRAME_BYTES..pos + WAL_FRAME_BYTES + len];
        if crc32(payload) != crc {
            break; // bit rot or a torn rewrite
        }
        let Some(record) = decode_payload(payload) else {
            break; // checksum fine, structure not: unreadable from here on
        };
        records.push(record);
        pos += WAL_FRAME_BYTES + len;
    }
    let truncated_tail = pos != data.len();
    Ok(WalReplay { records, valid_len: pos as u64, truncated_tail })
}

/// Reads every intact record of the log at `path` and, if the file ends in
/// a torn or corrupt tail, truncates it back to the last intact frame.
pub fn read_and_repair(path: &Path) -> std::io::Result<WalReplay> {
    let replay = read_records(path)?;
    if replay.truncated_tail {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(replay.valid_len)?;
        file.sync_all()?;
    }
    Ok(replay)
}

// --- writing -------------------------------------------------------------

/// An open, append-only WAL file plus its fsync policy state.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    policy: FsyncPolicy,
    last_sync: Instant,
}

impl WalWriter {
    /// Opens the log for appending, creating it if absent. `truncate`
    /// discards any existing content first (fresh registration).
    pub fn open(path: &Path, policy: FsyncPolicy, truncate: bool) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).truncate(false).open(path)?;
        if truncate {
            file.set_len(0)?;
        }
        Ok(Self { file, policy, last_sync: Instant::now() })
    }

    /// Appends one framed record; returns the bytes written. Durability
    /// follows the policy: `Always` syncs before returning (an acknowledged
    /// append survives power loss), `Interval` syncs at most once per
    /// `FSYNC_INTERVAL_MILLIS`, `Never` leaves flushing to the OS.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<u64> {
        let payload = encode_payload(record);
        let mut framed = Vec::with_capacity(payload.len() + WAL_FRAME_BYTES);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        self.file.write_all(&framed)?;
        self.maybe_sync()?;
        Ok(framed.len() as u64)
    }

    fn maybe_sync(&mut self) -> std::io::Result<()> {
        match self.policy {
            FsyncPolicy::Always => self.file.sync_data(),
            FsyncPolicy::Interval => {
                if self.last_sync.elapsed() >= Duration::from_millis(FSYNC_INTERVAL_MILLIS) {
                    self.file.sync_data()?;
                    self.last_sync = Instant::now();
                }
                Ok(())
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Empties the log — called right after a successful snapshot, whose
    /// sequence number keeps replay correct even if this step never runs.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rpm_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.wal", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        let db = rpm_timeseries::running_example_db();
        vec![
            WalRecord::Register { seq: 1, per: 2, min_ps: 3, min_rec: 2, db },
            WalRecord::Append { seq: 2, rows: vec![(20, vec!["a".into(), "b".into()])] },
            WalRecord::Append {
                seq: 3,
                rows: vec![(21, vec!["café".into()]), (25, vec!["x".into()])],
            },
        ]
    }

    #[test]
    fn payload_roundtrip() {
        for record in sample_records() {
            let payload = encode_payload(&record);
            assert_eq!(decode_payload(&payload).unwrap(), record);
        }
    }

    #[test]
    fn crc32_known_answer() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn write_read_roundtrip_and_idempotent_repair() {
        let path = temp_wal("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Always, true).unwrap();
        for record in sample_records() {
            w.append(&record).unwrap();
        }
        drop(w);
        let replay = read_and_repair(&path).unwrap();
        assert_eq!(replay.records, sample_records());
        assert!(!replay.truncated_tail);
        assert_eq!(replay.valid_len, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let path = temp_wal("torn");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never, true).unwrap();
        for record in sample_records() {
            w.append(&record).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Cutting the file anywhere must recover a prefix of the records
        // and leave the file physically truncated to that prefix.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = read_and_repair(&path).unwrap();
            assert!(replay.records.len() <= 3, "cut {cut}");
            assert_eq!(
                replay.truncated_tail,
                replay.valid_len != cut as u64,
                "cut {cut}: torn flag must track whether bytes were dropped"
            );
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                replay.valid_len,
                "cut {cut}: file must be truncated to the intact prefix"
            );
            for (got, want) in replay.records.iter().zip(sample_records()) {
                assert_eq!(*got, want, "cut {cut}: intact prefix replays unchanged");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flips_stop_replay_before_the_flip() {
        let path = temp_wal("bitflip");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, FsyncPolicy::Never, true).unwrap();
        for record in sample_records() {
            w.append(&record).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Flip one bit in the middle of the second record's payload.
        let mut corrupt = full.clone();
        let at = full.len() - 10;
        corrupt[at] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        let replay = read_and_repair(&path).unwrap();
        assert!(replay.truncated_tail);
        assert!(replay.records.len() < 3);
        for (got, want) in replay.records.iter().zip(sample_records()) {
            assert_eq!(*got, want, "intact prefix replays unchanged");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn absurd_length_prefix_is_a_torn_tail_not_an_allocation() {
        let path = temp_wal("absurd");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        let replay = read_and_repair(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.truncated_tail);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
