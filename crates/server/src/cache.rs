//! The LRU result cache: complete mining results keyed by
//! `(dataset fingerprint, ResolvedParams)`.
//!
//! Popular thresholds repeat — a dashboard polling "patterns at 2%" should
//! re-mine only when the dataset changes. The key's dataset half is the
//! content fingerprint ([`rpm_timeseries::fingerprint`]), so an append
//! *implicitly* invalidates every entry of the old content; the registry
//! additionally calls [`ResultCache::invalidate_fingerprint`] on append so
//! stale entries free their memory immediately instead of aging out.
//!
//! Only **complete** results are cached. A partial result reflects a
//! deadline, not the data; serving it from cache would return different
//! answers for identical state.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rpm_core::pattern::RecurringPattern;
use rpm_core::sync::lock_recover;
use rpm_core::{PatternIndex, ResolvedParams};

/// One cached complete result: the rendered JSON-lines body served byte-for-
/// byte on a hit, the patterns themselves, and a lazily built stabbing index
/// for `active?at=` queries against the same key.
#[derive(Debug)]
pub struct CachedResult {
    /// JSON-lines body exactly as first served.
    pub body: Arc<Vec<u8>>,
    /// The mined pattern set.
    pub patterns: Arc<Vec<RecurringPattern>>,
    index: OnceLock<Arc<PatternIndex>>,
}

impl CachedResult {
    /// Creates an entry; the index is built on first [`CachedResult::index`].
    pub fn new(body: Vec<u8>, patterns: Vec<RecurringPattern>) -> Self {
        Self { body: Arc::new(body), patterns: Arc::new(patterns), index: OnceLock::new() }
    }

    /// The interval-stabbing index over the cached patterns, built once.
    pub fn index(&self) -> Arc<PatternIndex> {
        self.index.get_or_init(|| Arc::new(PatternIndex::build(&self.patterns))).clone()
    }

    /// Approximate heap footprint, for the cache's byte budget.
    fn cost_bytes(&self) -> usize {
        let pattern_bytes: usize =
            self.patterns.iter().map(|p| p.items.len() * 4 + p.intervals.len() * 24 + 64).sum();
        // The index (if built) roughly doubles the pattern storage; charge
        // for it up front so building it cannot blow the budget later.
        self.body.len() + pattern_bytes * 2
    }
}

#[derive(Debug)]
struct Slot {
    result: Arc<CachedResult>,
    cost: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    slots: HashMap<(u64, ResolvedParams), Slot>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    patches: u64,
}

impl CacheState {
    /// Removes every entry keyed to the dataset content `fingerprint`,
    /// returning how many were dropped. The caller decides which counter
    /// they land in (invalidations vs. part of a patch).
    fn remove_fingerprint(&mut self, fingerprint: u64) -> u64 {
        let stale: Vec<(u64, ResolvedParams)> =
            self.slots.keys().filter(|(fp, _)| *fp == fingerprint).copied().collect();
        let mut dropped = 0;
        for key in stale {
            if let Some(slot) = self.slots.remove(&key) {
                self.bytes -= slot.cost;
                dropped += 1;
            }
        }
        dropped
    }

    /// Inserts one entry and evicts LRU victims until `budget` holds.
    fn insert_evicting(
        &mut self,
        key: (u64, ResolvedParams),
        result: Arc<CachedResult>,
        cost: usize,
        budget: usize,
    ) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.slots.insert(key, Slot { result, cost, last_used: tick }) {
            self.bytes -= old.cost;
        }
        self.bytes += cost;
        while self.bytes > budget {
            let Some((&victim, _)) = self.slots.iter().min_by_key(|(_, slot)| slot.last_used)
            else {
                break;
            };
            let Some(slot) = self.slots.remove(&victim) else { break };
            self.bytes -= slot.cost;
            self.evictions += 1;
        }
    }
}

/// A byte-budgeted LRU cache of complete mining results. All methods take
/// `&self`; interior state is behind one mutex (operations are O(entries),
/// which is dwarfed by the mining work they save).
#[derive(Debug)]
pub struct ResultCache {
    state: Mutex<CacheState>,
    budget_bytes: usize,
}

/// Counters describing cache effectiveness, reported by `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to mine.
    pub misses: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Entries dropped by append-driven invalidation.
    pub invalidations: u64,
    /// Append-driven patches: a delta mine replaced the old content's entry
    /// in place instead of invalidating it ([`ResultCache::patch`]).
    pub patches: u64,
    /// Current entry count.
    pub entries: usize,
    /// Current approximate footprint in bytes.
    pub bytes: usize,
}

impl ResultCache {
    /// A cache bounded to roughly `budget_bytes` of result data. A zero
    /// budget disables caching (every lookup is a miss).
    pub fn new(budget_bytes: usize) -> Self {
        Self { state: Mutex::new(CacheState::default()), budget_bytes }
    }

    /// Looks up a complete result, refreshing its recency on a hit.
    pub fn get(&self, fingerprint: u64, params: ResolvedParams) -> Option<Arc<CachedResult>> {
        let mut state = lock_recover(&self.state);
        state.tick += 1;
        let tick = state.tick;
        match state.slots.get_mut(&(fingerprint, params)) {
            Some(slot) => {
                slot.last_used = tick;
                let result = slot.result.clone();
                state.hits += 1;
                Some(result)
            }
            None => {
                state.misses += 1;
                None
            }
        }
    }

    /// Inserts a complete result, evicting least-recently-used entries until
    /// the byte budget holds. An entry larger than the whole budget is not
    /// cached at all.
    pub fn insert(&self, fingerprint: u64, params: ResolvedParams, result: Arc<CachedResult>) {
        let cost = result.cost_bytes();
        if cost > self.budget_bytes {
            return;
        }
        let mut state = lock_recover(&self.state);
        // lint:allow(lock-order): insert_evicting touches only the guarded CacheState; its `slots.insert` is HashMap::insert, which the name-based resolver confuses with ResultCache::insert — no re-entry
        state.insert_evicting((fingerprint, params), result, cost, self.budget_bytes);
    }

    /// Drops every entry mined from the dataset content `fingerprint` —
    /// called by the registry when an append retires that content.
    pub fn invalidate_fingerprint(&self, fingerprint: u64) {
        let mut state = lock_recover(&self.state);
        let dropped = state.remove_fingerprint(fingerprint);
        state.invalidations += dropped;
    }

    /// Atomically retires every entry of `old_fingerprint` and installs a
    /// fresh delta-mined result under `(new_fingerprint, params)` — the
    /// append path's alternative to [`ResultCache::invalidate_fingerprint`]
    /// when the dataset's pattern store could absorb the append
    /// incrementally. Entries of the old content at *other* parameters
    /// cannot be patched (the delta ran at the hot parameters only); they
    /// count as invalidations as usual, while the in-place replacement
    /// counts as a patch, not a miss-then-insert.
    pub fn patch(
        &self,
        old_fingerprint: u64,
        new_fingerprint: u64,
        params: ResolvedParams,
        result: Arc<CachedResult>,
    ) {
        let cost = result.cost_bytes();
        let mut state = lock_recover(&self.state);
        let dropped = state.remove_fingerprint(old_fingerprint);
        if cost > self.budget_bytes {
            // Too big to hold: the patch degenerates to an invalidation.
            state.invalidations += dropped;
            return;
        }
        state.invalidations += dropped.saturating_sub(1);
        state.patches += 1;
        // lint:allow(lock-order): insert_evicting touches only the guarded CacheState; its `slots.insert` is HashMap::insert, which the name-based resolver confuses with ResultCache::insert — no re-entry
        state.insert_evicting((new_fingerprint, params), result, cost, self.budget_bytes);
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let state = lock_recover(&self.state);
        CacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            invalidations: state.invalidations,
            patches: state.patches,
            entries: state.slots.len(),
            bytes: state.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n_bytes: usize) -> Arc<CachedResult> {
        Arc::new(CachedResult::new(vec![b'x'; n_bytes], Vec::new()))
    }

    fn params(per: i64) -> ResolvedParams {
        ResolvedParams::new(per, 1, 1)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = ResultCache::new(1 << 20);
        assert!(cache.get(7, params(1)).is_none());
        cache.insert(7, params(1), entry(10));
        let hit = cache.get(7, params(1)).expect("cached");
        assert_eq!(hit.body.len(), 10);
        // Different params or fingerprint miss.
        assert!(cache.get(7, params(2)).is_none());
        assert!(cache.get(8, params(1)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 3, 1));
    }

    #[test]
    fn lru_eviction_respects_recency() {
        // Budget fits two entries; touching the first makes the second the
        // eviction victim when a third arrives.
        let cache = ResultCache::new(250);
        cache.insert(1, params(1), entry(100));
        cache.insert(2, params(1), entry(100));
        assert!(cache.get(1, params(1)).is_some(), "refresh entry 1");
        cache.insert(3, params(1), entry(100));
        assert!(cache.get(1, params(1)).is_some(), "survivor");
        assert!(cache.get(2, params(1)).is_none(), "evicted as LRU");
        assert!(cache.get(3, params(1)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = ResultCache::new(50);
        cache.insert(1, params(1), entry(1000));
        assert!(cache.get(1, params(1)).is_none());
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(1, params(1), entry(1));
        assert!(cache.get(1, params(1)).is_none());
    }

    #[test]
    fn invalidation_clears_only_the_fingerprint() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(1, params(1), entry(10));
        cache.insert(1, params(2), entry(10));
        cache.insert(2, params(1), entry(10));
        cache.invalidate_fingerprint(1);
        assert!(cache.get(1, params(1)).is_none());
        assert!(cache.get(1, params(2)).is_none());
        assert!(cache.get(2, params(1)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 2);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn patch_replaces_hot_entry_and_invalidates_the_rest() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(1, params(1), entry(10)); // hot-params entry
        cache.insert(1, params(2), entry(10)); // other-params entry
        cache.insert(9, params(1), entry(10)); // unrelated dataset
        cache.patch(1, 2, params(1), entry(20));
        // Old content fully retired; the patched key serves immediately.
        assert!(cache.get(1, params(1)).is_none());
        assert!(cache.get(1, params(2)).is_none());
        assert_eq!(cache.get(2, params(1)).unwrap().body.len(), 20);
        assert!(cache.get(9, params(1)).is_some(), "other datasets untouched");
        let stats = cache.stats();
        assert_eq!(stats.patches, 1);
        assert_eq!(stats.invalidations, 1, "only the unpatchable params entry");
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn oversized_patch_degenerates_to_invalidation() {
        let cache = ResultCache::new(50);
        cache.insert(1, params(1), entry(10));
        cache.patch(1, 2, params(1), entry(1000));
        assert!(cache.get(2, params(1)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.patches, 0);
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let cache = ResultCache::new(1 << 10);
        cache.insert(1, params(1), entry(100));
        cache.insert(1, params(1), entry(200));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.get(1, params(1)).unwrap().body.len(), 200);
    }

    #[test]
    fn index_is_built_once_and_shared() {
        let result = entry(4);
        let a = result.index();
        let b = result.index();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.is_empty());
    }
}
