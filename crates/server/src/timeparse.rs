//! Human-friendly duration parsing, shared by the CLI's `--timeout` and the
//! server's per-request `timeout=` query parameter.
//!
//! Accepted forms: `250ms`, `30s`, `5m`, `2h`, or a bare number of seconds
//! (fractions allowed everywhere, e.g. `1.5h`). Out-of-range values —
//! negative, NaN, infinite, or so large the `Duration` would overflow — are
//! rejected with a descriptive message in the same `invalid parameters:`
//! style as [`rpm_core::engine::MiningError::InvalidParams`], never silently
//! wrapped or saturated.

use std::time::Duration;

/// Parses a duration. See the [module docs](self) for the accepted grammar.
pub fn parse_duration(text: &str) -> Result<Duration, String> {
    let t = text.trim();
    // Longest suffix first: `ms` must win over `m`.
    let (num, seconds_per_unit) = if let Some(v) = t.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = t.strip_suffix('s') {
        (v, 1.0)
    } else if let Some(v) = t.strip_suffix('m') {
        (v, 60.0)
    } else if let Some(v) = t.strip_suffix('h') {
        (v, 3600.0)
    } else {
        (t, 1.0)
    };
    let num = num.trim();
    if num.is_empty() {
        return Err(format!("invalid parameters: duration {text:?} has no number"));
    }
    let value: f64 =
        num.parse().map_err(|e| format!("invalid parameters: bad duration {text:?}: {e}"))?;
    if value.is_nan() || value < 0.0 {
        return Err(format!("invalid parameters: duration {text:?} must be non-negative"));
    }
    Duration::try_from_secs_f64(value * seconds_per_unit).map_err(|_| {
        format!("invalid parameters: duration {text:?} overflows the representable range")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_units_parse() {
        assert_eq!(parse_duration("250ms").unwrap(), Duration::from_millis(250));
        assert_eq!(parse_duration("30s").unwrap(), Duration::from_secs(30));
        assert_eq!(parse_duration("5m").unwrap(), Duration::from_secs(300));
        assert_eq!(parse_duration("2h").unwrap(), Duration::from_secs(7200));
        assert_eq!(parse_duration("45").unwrap(), Duration::from_secs(45), "bare = seconds");
        assert_eq!(parse_duration(" 1.5h ").unwrap(), Duration::from_secs(5400));
        assert_eq!(parse_duration("0ms").unwrap(), Duration::ZERO);
    }

    #[test]
    fn out_of_range_values_are_rejected_not_wrapped() {
        for bad in ["-1s", "nan", "inf", "1e300h", "99999999999999999999h", "1e20s"] {
            let err = parse_duration(bad).unwrap_err();
            assert!(err.starts_with("invalid parameters:"), "{bad}: {err}");
        }
    }

    #[test]
    fn garbage_is_rejected_with_context() {
        for bad in ["", "ms", "h", "fiveish", "10q", "--3s"] {
            assert!(parse_duration(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn huge_but_representable_values_survive() {
        // u64::MAX seconds is the Duration ceiling; stay well under it.
        let d = parse_duration("1000000h").unwrap();
        assert_eq!(d, Duration::from_secs(3_600_000_000));
    }
}
