//! The dataset registry: named, fingerprinted, append-able datasets.
//!
//! Each dataset wraps an [`IncrementalMiner`] rather than a bare
//! [`TransactionDb`]: the miner keeps Algorithm 1's per-item interval
//! scanners live across appends, so re-mining at the dataset's *hot*
//! parameters (fixed at registration) skips the first database scan
//! entirely, while arbitrary per-request parameters still mine the full
//! pipeline over the accumulated database.
//!
//! When the server runs with a data directory, each dataset additionally
//! carries a [`DatasetLog`]: write paths journal to the WAL **before**
//! mutating the miner, and [`Registry::with_persistence`] rebuilds every
//! dataset from its newest snapshot plus the WAL tail at startup, so
//! fingerprints and delta mining resume exactly where the previous
//! process left off.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, RwLock};

use rpm_core::engine::{AbortReason, RunControl};
use rpm_core::growth::{MineScratch, MiningResult};
use rpm_core::sync::{lock_recover, read_recover, write_recover};
use rpm_core::{DeltaStats, IncrementalMiner, PatternStore, ResolvedParams};
use rpm_timeseries::{from_bytes, io, SnapshotHeader, Timestamp, TransactionDb};

use crate::persist::{DatasetLog, Persistence, WalRecord};
use crate::replica::primary::{Event, ReplHub};

/// A registered dataset: the live miner plus its cached content fingerprint.
#[derive(Debug)]
pub struct Dataset {
    miner: IncrementalMiner,
    fingerprint: u64,
    appends: u64,
    /// The last complete hot-params mining result, reused by
    /// [`Dataset::mine_hot_delta`] to make append-then-mine cost
    /// proportional to the dirty frontier. Interior mutability because
    /// hot mines run under the dataset's *read* lock.
    store: Mutex<PatternStore>,
    /// Durability cursor; `None` when the server runs without a data
    /// directory.
    log: Option<DatasetLog>,
    /// Replication fan-out; `None` unless this server streams its journal
    /// to followers. Every journalled record is published here **while the
    /// dataset's write lock is held**, preserving commit order.
    hub: Option<Arc<ReplHub>>,
}

impl Dataset {
    fn new(miner: IncrementalMiner, log: Option<DatasetLog>) -> Self {
        let fingerprint = miner.fingerprint();
        Self {
            miner,
            fingerprint,
            appends: 0,
            store: Mutex::new(PatternStore::new()),
            log,
            hub: None,
        }
    }

    /// A dataset rebuilt from disk: `appends` comes from the recovered
    /// stream, and the pattern store is warmed with one complete hot mine
    /// so delta mining resumes on the first post-restart append.
    fn recovered(miner: IncrementalMiner, appends: u64, log: DatasetLog) -> Self {
        let fingerprint = miner.fingerprint();
        let dataset = Self {
            miner,
            fingerprint,
            appends,
            store: Mutex::new(PatternStore::new()),
            log: Some(log),
            hub: None,
        };
        if !dataset.miner.db().is_empty() {
            let control = RunControl::new();
            let mut scratch = MineScratch::new();
            let _ = dataset.mine_hot_delta(&control, &mut scratch, 1);
        }
        dataset
    }

    /// Detaches the durability cursor — the `replace=true` path hands an
    /// old dataset's log (and its sequence numbers) to the successor.
    fn take_log(&mut self) -> Option<DatasetLog> {
        self.log.take()
    }

    /// Snapshots the dataset unconditionally (shutdown flush). Errors are
    /// swallowed: the WAL still holds everything the snapshot would.
    fn flush_snapshot(&mut self) {
        let hot = self.miner.params();
        let appends = self.appends;
        if let Some(log) = self.log.as_mut() {
            let _ = log.force_snapshot(self.miner.db(), hot, appends);
        }
    }

    /// The accumulated database.
    pub fn db(&self) -> &TransactionDb {
        self.miner.db()
    }

    /// The live incremental miner.
    pub fn miner(&self) -> &IncrementalMiner {
        &self.miner
    }

    /// The content fingerprint of the current state (cached; recomputed on
    /// append).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The hot parameters the incremental scanners are maintained for.
    pub fn hot_params(&self) -> ResolvedParams {
        self.miner.params()
    }

    /// How many append requests this dataset has absorbed.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The last journalled sequence number; `None` without persistence.
    pub fn last_seq(&self) -> Option<u64> {
        self.log.as_ref().map(DatasetLog::seq)
    }

    /// Publishes one journalled record to the replication hub (no-op when
    /// this server has no followers). Callers hold the dataset's write
    /// lock, which is what serialises the stream.
    fn publish(&self, record: &WalRecord) {
        let (Some(hub), Some(log)) = (self.hub.as_ref(), self.log.as_ref()) else {
            return;
        };
        hub.publish(Event {
            name: log.name().to_string(),
            seq: record.seq(),
            fp: self.fingerprint,
            payload: crate::persist::wal::encode_payload(record),
        });
    }

    /// Applies one record shipped by a primary: journal it **verbatim**
    /// (preserving the primary's sequence number — this is what makes
    /// promotion continue the journal without gaps), then mutate through
    /// the same semantics recovery replay uses. Records at or below the
    /// current cursor are skipped, making replay idempotent across
    /// catch-up/live overlap and reconnects.
    pub(crate) fn apply_shipped(&mut self, record: &WalRecord) -> Result<ApplyOutcome, String> {
        let Some(current) = self.last_seq() else {
            return Err("shipped records require a durable dataset".to_string());
        };
        let register = matches!(record, WalRecord::Register { .. });
        let old_fingerprint = self.fingerprint;
        if record.seq() <= current {
            return Ok(ApplyOutcome {
                applied: false,
                register,
                old_fingerprint,
                fingerprint: self.fingerprint,
            });
        }
        if let Some(log) = self.log.as_mut() {
            log.log_shipped(record).map_err(|e| format!("journalling shipped record: {e}"))?;
        }
        match record {
            WalRecord::Register { per, min_ps, min_rec, db, .. } => {
                let hot = ResolvedParams::try_new(*per, *min_ps as usize, *min_rec as usize)
                    .map_err(|e| e.to_string())?;
                self.miner = replay_into_miner(db, hot)?;
                self.appends = 0;
                *lock_recover(&self.store) = PatternStore::new();
            }
            WalRecord::Append { rows, .. } => {
                // Live-path prefix semantics: apply rows until the first
                // time regression, exactly like recovery replay.
                for (ts, labels) in rows {
                    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                    if self.miner.append(*ts, &refs).is_err() {
                        break;
                    }
                }
                self.appends += 1;
            }
        }
        self.fingerprint = self.miner.fingerprint();
        let hot = self.miner.params();
        let appends = self.appends;
        if let Some(log) = self.log.as_mut() {
            let _ = log.maybe_snapshot(self.miner.db(), hot, appends);
        }
        // Cascade: a replica that is itself a primary re-publishes the
        // record to its own followers.
        self.publish(record);
        Ok(ApplyOutcome { applied: true, register, old_fingerprint, fingerprint: self.fingerprint })
    }

    /// Whether [`Dataset::mine_hot_delta`] would take the incremental path
    /// (warm store, same stream, dirty frontier under the threshold) rather
    /// than fall back to a full re-mine. The append handler consults this
    /// before committing to patching the cache in place.
    pub fn delta_applicable(&self) -> bool {
        self.miner.delta_applicable(&lock_recover(&self.store))
    }

    /// Retained hot-params patterns in the store (empty until the first
    /// complete hot mine) — exposed for tests and diagnostics.
    pub fn store_base_len(&self) -> usize {
        lock_recover(&self.store).base_len()
    }

    /// Mines at the hot parameters through the dataset's [`PatternStore`]:
    /// only candidates dirtied since the last complete hot mine are
    /// re-measured (resuming their checkpointed scans over the appended
    /// tail), clean patterns are spliced from the store, and the output is
    /// bit-identical to a batch mine. The frontier re-measurement runs on up
    /// to `threads` work-stealing workers. The store refreshes on every
    /// complete run (including full-mine fallbacks), so the first hot mine
    /// warms it.
    pub fn mine_hot_delta(
        &self,
        control: &RunControl,
        scratch: &mut MineScratch,
        threads: usize,
    ) -> (MiningResult, Option<AbortReason>, DeltaStats) {
        self.miner.mine_delta_controlled(&mut lock_recover(&self.store), control, scratch, threads)
    }

    /// Appends parsed `(ts, labels)` transactions in order, journalling
    /// the request to the WAL **before** touching the miner. On success
    /// the fingerprint is refreshed; on a time regression nothing before
    /// the offending transaction is rolled back (recovery replays the
    /// identical prefix), so the fingerprint is refreshed either way.
    pub fn append_lines(&mut self, rows: &[(Timestamp, Vec<String>)]) -> Result<(), AppendError> {
        if let Some(log) = self.log.as_mut() {
            log.log_append(rows).map_err(AppendError::Wal)?;
        }
        let outcome = (|| {
            for (ts, labels) in rows {
                let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                self.miner.append(*ts, &refs)?;
            }
            Ok(())
        })();
        self.fingerprint = self.miner.fingerprint();
        self.appends += 1;
        let hot = self.miner.params();
        let appends = self.appends;
        if let Some(log) = self.log.as_mut() {
            // A snapshot failure is non-fatal: the WAL retains everything.
            let _ = log.maybe_snapshot(self.miner.db(), hot, appends);
        }
        // Ship exactly what was journalled: the full request, at the seq the
        // log assigned it. Followers replay it with the same prefix
        // semantics, so even a partially-applied append converges.
        if self.hub.is_some() {
            if let Some(seq) = self.last_seq() {
                self.publish(&WalRecord::Append { seq, rows: rows.to_vec() });
            }
        }
        outcome.map_err(AppendError::Order)
    }
}

/// What [`Registry::apply_record`] did with a shipped record.
#[derive(Debug, Clone, Copy)]
pub struct ApplyOutcome {
    /// `false` when the record sat at or below the dataset's journal cursor
    /// and was skipped (idempotent replay of catch-up/live overlap).
    pub applied: bool,
    /// Whether the record was a register — a full reset the result cache
    /// cannot be patched across.
    pub register: bool,
    /// The dataset fingerprint before the record.
    pub old_fingerprint: u64,
    /// The dataset fingerprint after the record.
    pub fingerprint: u64,
}

/// Why [`Dataset::append_lines`] failed.
#[derive(Debug)]
pub enum AppendError {
    /// Journalling failed before anything was applied — a server-side
    /// fault; the dataset is unchanged.
    Wal(std::io::Error),
    /// A transaction regressed in time — a client fault; rows before the
    /// offending one were applied (and journalled).
    Order(rpm_timeseries::Error),
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::Wal(e) => write!(f, "journalling append failed: {e}"),
            AppendError::Order(e) => write!(f, "{e}"),
        }
    }
}

/// Parses an append body: the same `ts<TAB>item item…` lines as the text
/// database format (blank lines and `#` comments ignored).
pub fn parse_append_body(body: &[u8]) -> Result<Vec<(Timestamp, Vec<String>)>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (ts_str, rest) = line
            .split_once('\t')
            .or_else(|| line.split_once(' '))
            .ok_or_else(|| format!("line {}: expected `ts<TAB>items...`", lineno + 1))?;
        let ts: Timestamp = ts_str
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad timestamp {:?}: {e}", lineno + 1, ts_str.trim()))?;
        let labels: Vec<String> = rest.split_whitespace().map(str::to_owned).collect();
        if labels.is_empty() {
            return Err(format!("line {}: transaction has no items", lineno + 1));
        }
        rows.push((ts, labels));
    }
    if rows.is_empty() {
        return Err("append body holds no transactions".to_string());
    }
    Ok(rows)
}

/// Decodes an uploaded dataset body: binary (`RPMB` magic) or timestamped
/// text.
pub fn decode_dataset_body(body: &[u8]) -> Result<TransactionDb, String> {
    if body.starts_with(b"RPMB") {
        from_bytes(body).map_err(|e| format!("bad binary dataset: {e}"))
    } else {
        io::read_timestamped(body).map_err(|e| format!("bad text dataset: {e}"))
    }
}

/// Why [`Registry::register`] failed.
#[derive(Debug)]
pub enum RegisterError {
    /// The name is taken and `replace` was not requested.
    Exists,
    /// The uploaded database could not be replayed into a miner.
    Invalid(String),
    /// Journalling the registration failed; nothing was registered.
    Wal(std::io::Error),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::Exists => f.write_str("dataset already exists"),
            RegisterError::Invalid(msg) => f.write_str(msg),
            RegisterError::Wal(e) => write!(f, "journalling registration failed: {e}"),
        }
    }
}

/// What startup recovery found on disk.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Datasets rebuilt, sorted by name.
    pub recovered: Vec<String>,
    /// On-disk names with no recoverable state (e.g. a WAL torn before its
    /// register record) — left truncated on disk, not registered.
    pub skipped: Vec<String>,
}

/// Replays `db` into a fresh incremental miner pinned to `hot_params`.
fn replay_into_miner(
    db: &TransactionDb,
    hot_params: ResolvedParams,
) -> Result<IncrementalMiner, String> {
    let mut miner = IncrementalMiner::with_items(db.items().clone(), hot_params);
    for t in db.transactions() {
        miner
            .append_ids(t.timestamp(), t.items().to_vec())
            .map_err(|e| format!("replay failed: {e}"))?;
    }
    Ok(miner)
}

/// The shared, named dataset map. Datasets are individually locked so a
/// long mine on one dataset never blocks queries on another.
#[derive(Debug, Default)]
pub struct Registry {
    datasets: RwLock<HashMap<String, Arc<RwLock<Dataset>>>>,
    persist: Option<Arc<Persistence>>,
    /// Replication fan-out, installed once at bind time on a primary.
    hub: Option<Arc<ReplHub>>,
}

impl Registry {
    /// An empty, in-memory-only registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A durable registry over `persist`'s data directory: every dataset
    /// found on disk is rebuilt from its newest valid snapshot plus the
    /// replayed WAL tail (torn tails truncated) before the registry is
    /// handed out.
    pub fn with_persistence(persist: Arc<Persistence>) -> std::io::Result<(Self, RecoveryReport)> {
        let registry = Self {
            datasets: RwLock::new(HashMap::new()),
            persist: Some(persist.clone()),
            hub: None,
        };
        let mut report = RecoveryReport::default();
        for name in persist.dataset_names()? {
            match recover_dataset(&persist, &name)? {
                Some(dataset) => {
                    persist.counters().recovered_datasets.fetch_add(1, Ordering::Relaxed);
                    write_recover(&registry.datasets)
                        .insert(name.clone(), Arc::new(RwLock::new(dataset)));
                    report.recovered.push(name);
                }
                None => report.skipped.push(name),
            }
        }
        Ok((registry, report))
    }

    /// Registers `db` under `name` with the given hot parameters, replaying
    /// it into a fresh incremental miner. An existing name is an error
    /// unless `replace` is set, in which case the new content supersedes
    /// the old dataset — journalled as a register record continuing the old
    /// log's sequence, so the swap itself is crash-safe.
    pub fn register(
        &self,
        name: &str,
        db: TransactionDb,
        hot_params: ResolvedParams,
        replace: bool,
    ) -> Result<u64, RegisterError> {
        let miner = replay_into_miner(&db, hot_params).map_err(RegisterError::Invalid)?;
        let mut map = write_recover(&self.datasets);
        // lint:allow(lock-order): `map.get` is HashMap::get on the guarded map itself, which the name-based resolver confuses with Registry::get — the map lock is not re-acquired
        let existing = map.get(name).cloned();
        if existing.is_some() && !replace {
            return Err(RegisterError::Exists);
        }
        let log = match &self.persist {
            None => None,
            Some(persist) => {
                let inherited = existing.as_ref().and_then(|old| write_recover(old).take_log());
                Some(match inherited {
                    Some(mut log) => {
                        // lint:allow(lock-order): journal-before-publish — the register record must hit the WAL under the map's write lock so a concurrent register cannot interleave records (DESIGN.md §5)
                        log.log_register(miner.db(), hot_params).map_err(RegisterError::Wal)?;
                        log
                    }
                    // lint:allow(lock-order): same journal-before-publish ordering as above, for the fresh-log case
                    None => DatasetLog::create(persist, name, miner.db(), hot_params)
                        .map_err(RegisterError::Wal)?,
                })
            }
        };
        let mut dataset = Dataset::new(miner, log);
        dataset.hub = self.hub.clone();
        let fingerprint = dataset.fingerprint();
        // Publish the registration while the map's write lock is held: any
        // append must first `get` the dataset (blocked on this lock), so
        // its publish cannot overtake this one.
        if dataset.hub.is_some() {
            if let Some(seq) = dataset.last_seq() {
                dataset.publish(&WalRecord::Register {
                    seq,
                    per: hot_params.per,
                    min_ps: hot_params.min_ps as u64,
                    min_rec: hot_params.min_rec as u64,
                    db: dataset.miner.db().clone(),
                });
            }
        }
        map.insert(name.to_string(), Arc::new(RwLock::new(dataset)));
        Ok(fingerprint)
    }

    /// Installs the replication hub on the registry and every dataset
    /// recovered so far, seeding the hub's heartbeat map with their journal
    /// cursors. Called once at bind time, before the server accepts
    /// requests or followers.
    pub(crate) fn set_hub(&mut self, hub: Arc<ReplHub>) {
        for (name, dataset) in read_recover(&self.datasets).iter() {
            let mut ds = write_recover(dataset);
            ds.hub = Some(hub.clone());
            hub.note_seq(name, ds.last_seq().unwrap_or(0));
        }
        self.hub = Some(hub);
    }

    /// Applies a bootstrap snapshot shipped by a primary: the dataset is
    /// rebuilt from scratch — snapshot persisted locally, fresh WAL opened
    /// at the snapshot's sequence, miner replayed, pattern store warmed —
    /// exactly as if this process had recovered from the primary's disk.
    /// Returns `(old fingerprint if the name was already registered, new
    /// fingerprint)`.
    pub fn apply_snapshot(
        &self,
        name: &str,
        header: &SnapshotHeader,
        db: &TransactionDb,
    ) -> Result<(Option<u64>, u64), String> {
        let Some(persist) = self.persist.as_ref() else {
            return Err("replication requires a data directory".to_string());
        };
        let hot =
            ResolvedParams::try_new(header.per, header.min_ps as usize, header.min_rec as usize)
                .map_err(|e| e.to_string())?;
        let miner = replay_into_miner(db, hot)?;
        let log = DatasetLog::adopt_snapshot(persist, name, header, db)
            .map_err(|e| format!("adopting shipped snapshot: {e}"))?;
        let mut dataset = Dataset::recovered(miner, header.appends, log);
        dataset.hub = self.hub.clone();
        let fingerprint = dataset.fingerprint();
        let previous =
            write_recover(&self.datasets).insert(name.to_string(), Arc::new(RwLock::new(dataset)));
        let old_fingerprint = previous.map(|old| read_recover(&old).fingerprint());
        Ok((old_fingerprint, fingerprint))
    }

    /// Applies one journal record shipped by a primary. For a known dataset
    /// this defers to [`Dataset::apply_shipped`] under its write lock; a
    /// register record for an unknown name creates the dataset with a fresh
    /// journal continuing the primary's numbering. Anything else for an
    /// unknown name means the stream is broken.
    pub fn apply_record(&self, name: &str, record: &WalRecord) -> Result<ApplyOutcome, String> {
        let Some(persist) = self.persist.as_ref() else {
            return Err("replication requires a data directory".to_string());
        };
        if let Some(dataset) = self.get(name) {
            // lint:allow(lock-order): journal-before-mutate — the shipped record is WAL-appended under the dataset lock so log order stays identical to apply order on the follower
            return write_recover(&dataset).apply_shipped(record);
        }
        let WalRecord::Register { per, min_ps, min_rec, db, .. } = record else {
            return Err(format!("shipped append for unknown dataset {name:?}"));
        };
        let hot = ResolvedParams::try_new(*per, *min_ps as usize, *min_rec as usize)
            .map_err(|e| e.to_string())?;
        let miner = replay_into_miner(db, hot)?;
        let mut log = DatasetLog::fresh(persist, name).map_err(|e| e.to_string())?;
        log.log_shipped(record).map_err(|e| format!("journalling shipped register: {e}"))?;
        let mut dataset = Dataset::new(miner, Some(log));
        dataset.hub = self.hub.clone();
        let fingerprint = dataset.fingerprint();
        dataset.publish(record);
        write_recover(&self.datasets).insert(name.to_string(), Arc::new(RwLock::new(dataset)));
        Ok(ApplyOutcome { applied: true, register: true, old_fingerprint: 0, fingerprint })
    }

    /// The dataset registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<RwLock<Dataset>>> {
        // lint:allow(lock-order): `.get` here is HashMap::get on the read guard, which the name-based resolver confuses with this very method — the map lock is not re-acquired
        read_recover(&self.datasets).get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_recover(&self.datasets).keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshots every durable dataset — the shutdown flush. Per-dataset
    /// failures are non-fatal: the WAL still holds everything.
    pub fn flush_snapshots(&self) {
        let datasets: Vec<Arc<RwLock<Dataset>>> =
            read_recover(&self.datasets).values().cloned().collect();
        for dataset in datasets {
            // lint:allow(lock-order): the snapshot is written under the dataset lock to capture a consistent image; this runs on the background flush cadence, not the request path
            write_recover(&dataset).flush_snapshot();
        }
    }
}

/// Rebuilds one dataset from disk: newest valid snapshot (if any), then
/// every WAL record with a larger sequence number. Returns `None` when the
/// on-disk state yields no dataset at all — e.g. a WAL whose register
/// record was torn away and no snapshot to fall back to.
fn recover_dataset(persist: &Arc<Persistence>, name: &str) -> std::io::Result<Option<Dataset>> {
    let mut snap_seq = 0u64;
    let mut state: Option<(IncrementalMiner, u64)> = None;
    if let Some((header, db)) = persist.load_snapshot(name) {
        let hot =
            ResolvedParams::try_new(header.per, header.min_ps as usize, header.min_rec as usize);
        if let Ok(hot) = hot {
            if let Ok(miner) = replay_into_miner(&db, hot) {
                snap_seq = header.seq;
                state = Some((miner, header.appends));
            }
        }
        // An unusable snapshot falls through to WAL-only recovery with
        // snap_seq = 0, replaying the log from its first record.
    }
    let mut last_seq = snap_seq;
    let mut records_since_snapshot = 0u64;
    if let Some(replay) = persist.read_wal(name)? {
        for record in replay.records {
            let seq = record.seq();
            if seq <= snap_seq {
                continue; // already folded into the snapshot
            }
            match record {
                WalRecord::Register { per, min_ps, min_rec, db, .. } => {
                    let hot = ResolvedParams::try_new(per, min_ps as usize, min_rec as usize);
                    if let Ok(hot) = hot {
                        if let Ok(miner) = replay_into_miner(&db, hot) {
                            state = Some((miner, 0));
                        }
                    }
                }
                WalRecord::Append { rows, .. } => {
                    if let Some((miner, appends)) = state.as_mut() {
                        // Identical semantics to the live path: apply rows
                        // until the first time regression, then stop.
                        for (ts, labels) in &rows {
                            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                            if miner.append(*ts, &refs).is_err() {
                                break;
                            }
                        }
                        *appends += 1;
                    }
                }
            }
            last_seq = seq;
            records_since_snapshot += 1;
        }
    }
    let Some((miner, appends)) = state else {
        return Ok(None);
    };
    let log = DatasetLog::resume(persist, name, last_seq, records_since_snapshot)?;
    Ok(Some(Dataset::recovered(miner, appends, log)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpm_timeseries::running_example_db;

    #[test]
    fn register_replays_and_fingerprints() {
        let registry = Registry::new();
        let db = running_example_db();
        let expected_fp = rpm_timeseries::fingerprint(&db);
        let fp =
            registry.register("example", db.clone(), ResolvedParams::new(2, 3, 2), false).unwrap();
        assert_eq!(fp, expected_fp, "replay is content-preserving");
        let dataset = registry.get("example").unwrap();
        let dataset = dataset.read().unwrap();
        assert_eq!(dataset.db().len(), 12);
        assert_eq!(dataset.hot_params(), ResolvedParams::new(2, 3, 2));
        // Hot-path mining through the live scanners matches Table 2.
        assert_eq!(dataset.miner().mine().patterns.len(), 8);
    }

    #[test]
    fn duplicate_names_are_rejected_unless_replacing() {
        let registry = Registry::new();
        let p = ResolvedParams::new(1, 1, 1);
        registry.register("d", running_example_db(), p, false).unwrap();
        assert!(matches!(
            registry.register("d", running_example_db(), p, false),
            Err(RegisterError::Exists)
        ));
        // replace=true swaps the content in and resets the append counter.
        {
            let dataset = registry.get("d").unwrap();
            dataset.write().unwrap().append_lines(&[(50, vec!["z".into()])]).unwrap();
        }
        let p2 = ResolvedParams::new(2, 3, 2);
        registry.register("d", running_example_db(), p2, true).unwrap();
        let dataset = registry.get("d").unwrap();
        let dataset = dataset.read().unwrap();
        assert_eq!(dataset.db().len(), 12, "replacement content, not the appended one");
        assert_eq!(dataset.hot_params(), p2);
        assert_eq!(dataset.appends(), 0);
        assert_eq!(registry.names(), vec!["d"]);
    }

    #[test]
    fn append_changes_fingerprint_and_rejects_regressions() {
        let registry = Registry::new();
        registry.register("d", running_example_db(), ResolvedParams::new(2, 3, 2), false).unwrap();
        let dataset = registry.get("d").unwrap();
        let mut dataset = dataset.write().unwrap();
        let fp0 = dataset.fingerprint();
        dataset.append_lines(&[(20, vec!["a".into(), "b".into()])]).unwrap();
        assert_ne!(dataset.fingerprint(), fp0);
        assert_eq!(dataset.db().len(), 13);
        // A time regression errors and the fingerprint stays current.
        let fp1 = dataset.fingerprint();
        assert!(dataset.append_lines(&[(3, vec!["a".into()])]).is_err());
        assert_eq!(dataset.fingerprint(), fp1);
        assert_eq!(dataset.appends(), 2);
    }

    #[test]
    fn hot_delta_warms_store_and_patches_after_append() {
        let registry = Registry::new();
        registry.register("d", running_example_db(), ResolvedParams::new(2, 3, 2), false).unwrap();
        let dataset = registry.get("d").unwrap();
        let ds = dataset.read().unwrap();
        assert!(!ds.delta_applicable(), "cold store cannot delta");
        let control = RunControl::new();
        let mut scratch = MineScratch::new();
        let (first, abort, stats) = ds.mine_hot_delta(&control, &mut scratch, 1);
        assert!(abort.is_none());
        assert!(!stats.mode.is_delta(), "first mine is the warming full mine");
        assert_eq!(first.patterns.len(), 8);
        assert_eq!(ds.store_base_len(), 12);
        drop(ds);

        // A rare-item append keeps the frontier narrow: the delta engages
        // and stays bit-identical to a batch mine.
        let mut ds = dataset.write().unwrap();
        ds.append_lines(&[(20, vec!["nightcap".into()])]).unwrap();
        assert!(ds.delta_applicable(), "rare-item append is delta-eligible");
        let (second, abort, stats) = ds.mine_hot_delta(&control, &mut scratch, 2);
        assert!(abort.is_none());
        assert!(stats.mode.is_delta());
        assert_eq!(second.patterns, ds.miner().mine().patterns);
        assert_eq!(ds.store_base_len(), 13, "complete delta refreshed the store");
    }

    #[test]
    fn append_body_parsing() {
        let rows = parse_append_body(b"# comment\n21\ta b\n22 c\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (21, vec!["a".to_string(), "b".to_string()]));
        assert_eq!(rows[1], (22, vec!["c".to_string()]));
        assert!(parse_append_body(b"").is_err());
        assert!(parse_append_body(b"nope").is_err());
        assert!(parse_append_body(b"12\t").is_err(), "no items");
        assert!(parse_append_body(&[0xff, 0xfe]).is_err(), "not UTF-8");
    }

    #[test]
    fn dataset_body_decoding_sniffs_the_magic() {
        let db = running_example_db();
        let bin = rpm_timeseries::to_bytes(&db);
        assert_eq!(decode_dataset_body(&bin).unwrap().len(), 12);
        let mut text = Vec::new();
        io::write_timestamped(&db, &mut text).unwrap();
        assert_eq!(decode_dataset_body(&text).unwrap().len(), 12);
        assert!(decode_dataset_body(b"RPMBgarbage").is_err());
    }

    fn temp_persist(tag: &str) -> Arc<Persistence> {
        let dir =
            std::env::temp_dir().join(format!("rpm_registry_persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Persistence::open(crate::persist::PersistConfig::new(dir)).unwrap()
    }

    #[test]
    fn durable_registry_survives_a_simulated_crash() {
        let persist = temp_persist("crash");
        let hot = ResolvedParams::new(2, 3, 2);
        let (fp_before, mined_before) = {
            let (registry, report) = Registry::with_persistence(persist.clone()).unwrap();
            assert!(report.recovered.is_empty());
            registry.register("d", running_example_db(), hot, false).unwrap();
            let dataset = registry.get("d").unwrap();
            let mut ds = dataset.write().unwrap();
            ds.append_lines(&[(20, vec!["a".into(), "b".into()])]).unwrap();
            ds.append_lines(&[(21, vec!["c".into()])]).unwrap();
            (ds.fingerprint(), ds.miner().mine().patterns)
            // Dropped without any snapshot: the "crash". The WAL (fsync
            // policy `always`) is all recovery gets.
        };
        let (registry, report) = Registry::with_persistence(persist.clone()).unwrap();
        assert_eq!(report.recovered, vec!["d".to_string()]);
        let dataset = registry.get("d").unwrap();
        let ds = dataset.read().unwrap();
        assert_eq!(ds.fingerprint(), fp_before, "recovered fingerprint matches pre-crash");
        assert_eq!(ds.appends(), 2);
        assert_eq!(ds.hot_params(), hot);
        assert_eq!(ds.miner().mine().patterns, mined_before, "mine output identical");
        assert!(ds.store_base_len() > 0, "pattern store warmed at recovery");
        assert_eq!(crate::persist::PersistCounters::get(&persist.counters().recovered_datasets), 1);
        std::fs::remove_dir_all(persist.dir()).unwrap();
    }

    #[test]
    fn recovery_replays_wal_on_top_of_a_stale_snapshot() {
        let persist = temp_persist("stale-snap");
        let hot = ResolvedParams::new(2, 3, 2);
        let fp_before = {
            let (registry, _) = Registry::with_persistence(persist.clone()).unwrap();
            registry.register("d", running_example_db(), hot, false).unwrap();
            let dataset = registry.get("d").unwrap();
            let mut ds = dataset.write().unwrap();
            ds.append_lines(&[(20, vec!["a".into()])]).unwrap();
            // Snapshot now, then keep appending: the snapshot goes stale
            // and recovery must replay the WAL tail on top of it.
            ds.flush_snapshot();
            ds.append_lines(&[(21, vec!["b".into()])]).unwrap();
            ds.append_lines(&[(22, vec!["c".into()])]).unwrap();
            ds.fingerprint()
        };
        let (header, _) = persist.load_snapshot("d").unwrap();
        assert_eq!(header.appends, 1, "snapshot predates two appends");
        let (registry, report) = Registry::with_persistence(persist.clone()).unwrap();
        assert_eq!(report.recovered, vec!["d".to_string()]);
        let dataset = registry.get("d").unwrap();
        let ds = dataset.read().unwrap();
        assert_eq!(ds.fingerprint(), fp_before);
        assert_eq!(ds.appends(), 3);
        assert_eq!(ds.db().len(), 15);
        std::fs::remove_dir_all(persist.dir()).unwrap();
    }

    #[test]
    fn replace_is_journalled_and_recovers_to_the_replacement() {
        let persist = temp_persist("replace");
        let hot = ResolvedParams::new(2, 3, 2);
        {
            let (registry, _) = Registry::with_persistence(persist.clone()).unwrap();
            registry.register("d", running_example_db(), hot, false).unwrap();
            {
                let dataset = registry.get("d").unwrap();
                let mut ds = dataset.write().unwrap();
                ds.append_lines(&[(20, vec!["doomed".into()])]).unwrap();
            }
            // Replace with a two-transaction db at different hot params.
            let text = b"1\tx y\n2\tx\n";
            let replacement = io::read_timestamped(&text[..]).unwrap();
            registry.register("d", replacement, ResolvedParams::new(1, 1, 1), true).unwrap();
        }
        let (registry, _) = Registry::with_persistence(persist.clone()).unwrap();
        let dataset = registry.get("d").unwrap();
        let ds = dataset.read().unwrap();
        assert_eq!(ds.db().len(), 2, "replacement content recovered, not the original");
        assert_eq!(ds.hot_params(), ResolvedParams::new(1, 1, 1));
        assert_eq!(ds.appends(), 0);
        std::fs::remove_dir_all(persist.dir()).unwrap();
    }

    #[test]
    fn time_regression_appends_recover_with_identical_prefix_semantics() {
        let persist = temp_persist("regression");
        let hot = ResolvedParams::new(2, 3, 2);
        let fp_before = {
            let (registry, _) = Registry::with_persistence(persist.clone()).unwrap();
            registry.register("d", running_example_db(), hot, false).unwrap();
            let dataset = registry.get("d").unwrap();
            let mut ds = dataset.write().unwrap();
            // Second row regresses: the first is applied, the error is
            // reported, and the whole request sits in the WAL.
            let rows = vec![(30, vec!["ok".into()]), (3, vec!["bad".into()])];
            assert!(matches!(ds.append_lines(&rows), Err(AppendError::Order(_))));
            ds.fingerprint()
        };
        let (registry, _) = Registry::with_persistence(persist.clone()).unwrap();
        let dataset = registry.get("d").unwrap();
        let ds = dataset.read().unwrap();
        assert_eq!(ds.fingerprint(), fp_before, "replay applies the same prefix");
        assert_eq!(ds.db().len(), 13);
        assert_eq!(ds.appends(), 1);
        std::fs::remove_dir_all(persist.dir()).unwrap();
    }
}
