//! The dataset registry: named, fingerprinted, append-able datasets.
//!
//! Each dataset wraps an [`IncrementalMiner`] rather than a bare
//! [`TransactionDb`]: the miner keeps Algorithm 1's per-item interval
//! scanners live across appends, so re-mining at the dataset's *hot*
//! parameters (fixed at registration) skips the first database scan
//! entirely, while arbitrary per-request parameters still mine the full
//! pipeline over the accumulated database.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use rpm_core::engine::{AbortReason, RunControl};
use rpm_core::growth::{MineScratch, MiningResult};
use rpm_core::sync::{lock_recover, read_recover, write_recover};
use rpm_core::{DeltaStats, IncrementalMiner, PatternStore, ResolvedParams};
use rpm_timeseries::{from_bytes, io, Timestamp, TransactionDb};

/// A registered dataset: the live miner plus its cached content fingerprint.
#[derive(Debug)]
pub struct Dataset {
    miner: IncrementalMiner,
    fingerprint: u64,
    appends: u64,
    /// The last complete hot-params mining result, reused by
    /// [`Dataset::mine_hot_delta`] to make append-then-mine cost
    /// proportional to the dirty frontier. Interior mutability because
    /// hot mines run under the dataset's *read* lock.
    store: Mutex<PatternStore>,
}

impl Dataset {
    fn new(miner: IncrementalMiner) -> Self {
        let fingerprint = miner.fingerprint();
        Self { miner, fingerprint, appends: 0, store: Mutex::new(PatternStore::new()) }
    }

    /// The accumulated database.
    pub fn db(&self) -> &TransactionDb {
        self.miner.db()
    }

    /// The live incremental miner.
    pub fn miner(&self) -> &IncrementalMiner {
        &self.miner
    }

    /// The content fingerprint of the current state (cached; recomputed on
    /// append).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The hot parameters the incremental scanners are maintained for.
    pub fn hot_params(&self) -> ResolvedParams {
        self.miner.params()
    }

    /// How many append requests this dataset has absorbed.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Whether [`Dataset::mine_hot_delta`] would take the incremental path
    /// (warm store, same stream, dirty frontier under the threshold) rather
    /// than fall back to a full re-mine. The append handler consults this
    /// before committing to patching the cache in place.
    pub fn delta_applicable(&self) -> bool {
        self.miner.delta_applicable(&lock_recover(&self.store))
    }

    /// Retained hot-params patterns in the store (empty until the first
    /// complete hot mine) — exposed for tests and diagnostics.
    pub fn store_base_len(&self) -> usize {
        lock_recover(&self.store).base_len()
    }

    /// Mines at the hot parameters through the dataset's [`PatternStore`]:
    /// only branches dirtied since the last complete hot mine are re-grown,
    /// clean patterns are spliced from the store, and the output is
    /// bit-identical to a batch mine. The store refreshes on every complete
    /// run (including full-mine fallbacks), so the first hot mine warms it.
    pub fn mine_hot_delta(
        &self,
        control: &RunControl,
        scratch: &mut MineScratch,
    ) -> (MiningResult, Option<AbortReason>, DeltaStats) {
        self.miner.mine_delta_controlled(&mut lock_recover(&self.store), control, scratch)
    }

    /// Appends parsed `(ts, labels)` transactions in order. On success the
    /// fingerprint is refreshed; on failure (a time regression) nothing
    /// before the offending transaction is rolled back, so the fingerprint
    /// is refreshed either way.
    pub fn append_lines(
        &mut self,
        rows: &[(Timestamp, Vec<String>)],
    ) -> Result<(), rpm_timeseries::Error> {
        let outcome = (|| {
            for (ts, labels) in rows {
                let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                self.miner.append(*ts, &refs)?;
            }
            Ok(())
        })();
        self.fingerprint = self.miner.fingerprint();
        self.appends += 1;
        outcome
    }
}

/// Parses an append body: the same `ts<TAB>item item…` lines as the text
/// database format (blank lines and `#` comments ignored).
pub fn parse_append_body(body: &[u8]) -> Result<Vec<(Timestamp, Vec<String>)>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (ts_str, rest) = line
            .split_once('\t')
            .or_else(|| line.split_once(' '))
            .ok_or_else(|| format!("line {}: expected `ts<TAB>items...`", lineno + 1))?;
        let ts: Timestamp = ts_str
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad timestamp {:?}: {e}", lineno + 1, ts_str.trim()))?;
        let labels: Vec<String> = rest.split_whitespace().map(str::to_owned).collect();
        if labels.is_empty() {
            return Err(format!("line {}: transaction has no items", lineno + 1));
        }
        rows.push((ts, labels));
    }
    if rows.is_empty() {
        return Err("append body holds no transactions".to_string());
    }
    Ok(rows)
}

/// Decodes an uploaded dataset body: binary (`RPMB` magic) or timestamped
/// text.
pub fn decode_dataset_body(body: &[u8]) -> Result<TransactionDb, String> {
    if body.starts_with(b"RPMB") {
        from_bytes(body).map_err(|e| format!("bad binary dataset: {e}"))
    } else {
        io::read_timestamped(body).map_err(|e| format!("bad text dataset: {e}"))
    }
}

/// The shared, named dataset map. Datasets are individually locked so a
/// long mine on one dataset never blocks queries on another.
#[derive(Debug, Default)]
pub struct Registry {
    datasets: RwLock<HashMap<String, Arc<RwLock<Dataset>>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `db` under `name` with the given hot parameters, replaying
    /// it into a fresh incremental miner. Fails if the name is taken.
    pub fn register(
        &self,
        name: &str,
        db: TransactionDb,
        hot_params: ResolvedParams,
    ) -> Result<u64, String> {
        let mut miner = IncrementalMiner::with_items(db.items().clone(), hot_params);
        for t in db.transactions() {
            miner
                .append_ids(t.timestamp(), t.items().to_vec())
                .map_err(|e| format!("replay failed: {e}"))?;
        }
        let dataset = Dataset::new(miner);
        let fingerprint = dataset.fingerprint();
        let mut map = write_recover(&self.datasets);
        if map.contains_key(name) {
            return Err(format!("dataset {name:?} already exists"));
        }
        map.insert(name.to_string(), Arc::new(RwLock::new(dataset)));
        Ok(fingerprint)
    }

    /// The dataset registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<RwLock<Dataset>>> {
        read_recover(&self.datasets).get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_recover(&self.datasets).keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpm_timeseries::running_example_db;

    #[test]
    fn register_replays_and_fingerprints() {
        let registry = Registry::new();
        let db = running_example_db();
        let expected_fp = rpm_timeseries::fingerprint(&db);
        let fp = registry.register("example", db.clone(), ResolvedParams::new(2, 3, 2)).unwrap();
        assert_eq!(fp, expected_fp, "replay is content-preserving");
        let dataset = registry.get("example").unwrap();
        let dataset = dataset.read().unwrap();
        assert_eq!(dataset.db().len(), 12);
        assert_eq!(dataset.hot_params(), ResolvedParams::new(2, 3, 2));
        // Hot-path mining through the live scanners matches Table 2.
        assert_eq!(dataset.miner().mine().patterns.len(), 8);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let registry = Registry::new();
        let p = ResolvedParams::new(1, 1, 1);
        registry.register("d", running_example_db(), p).unwrap();
        assert!(registry.register("d", running_example_db(), p).is_err());
        assert_eq!(registry.names(), vec!["d"]);
    }

    #[test]
    fn append_changes_fingerprint_and_rejects_regressions() {
        let registry = Registry::new();
        registry.register("d", running_example_db(), ResolvedParams::new(2, 3, 2)).unwrap();
        let dataset = registry.get("d").unwrap();
        let mut dataset = dataset.write().unwrap();
        let fp0 = dataset.fingerprint();
        dataset.append_lines(&[(20, vec!["a".into(), "b".into()])]).unwrap();
        assert_ne!(dataset.fingerprint(), fp0);
        assert_eq!(dataset.db().len(), 13);
        // A time regression errors and the fingerprint stays current.
        let fp1 = dataset.fingerprint();
        assert!(dataset.append_lines(&[(3, vec!["a".into()])]).is_err());
        assert_eq!(dataset.fingerprint(), fp1);
        assert_eq!(dataset.appends(), 2);
    }

    #[test]
    fn hot_delta_warms_store_and_patches_after_append() {
        let registry = Registry::new();
        registry.register("d", running_example_db(), ResolvedParams::new(2, 3, 2)).unwrap();
        let dataset = registry.get("d").unwrap();
        let ds = dataset.read().unwrap();
        assert!(!ds.delta_applicable(), "cold store cannot delta");
        let control = RunControl::new();
        let mut scratch = MineScratch::new();
        let (first, abort, stats) = ds.mine_hot_delta(&control, &mut scratch);
        assert!(abort.is_none());
        assert!(!stats.mode.is_delta(), "first mine is the warming full mine");
        assert_eq!(first.patterns.len(), 8);
        assert_eq!(ds.store_base_len(), 12);
        drop(ds);

        // A rare-item append keeps the frontier narrow: the delta engages
        // and stays bit-identical to a batch mine.
        let mut ds = dataset.write().unwrap();
        ds.append_lines(&[(20, vec!["nightcap".into()])]).unwrap();
        assert!(ds.delta_applicable(), "rare-item append is delta-eligible");
        let (second, abort, stats) = ds.mine_hot_delta(&control, &mut scratch);
        assert!(abort.is_none());
        assert!(stats.mode.is_delta());
        assert_eq!(second.patterns, ds.miner().mine().patterns);
        assert_eq!(ds.store_base_len(), 13, "complete delta refreshed the store");
    }

    #[test]
    fn append_body_parsing() {
        let rows = parse_append_body(b"# comment\n21\ta b\n22 c\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (21, vec!["a".to_string(), "b".to_string()]));
        assert_eq!(rows[1], (22, vec!["c".to_string()]));
        assert!(parse_append_body(b"").is_err());
        assert!(parse_append_body(b"nope").is_err());
        assert!(parse_append_body(b"12\t").is_err(), "no items");
        assert!(parse_append_body(&[0xff, 0xfe]).is_err(), "not UTF-8");
    }

    #[test]
    fn dataset_body_decoding_sniffs_the_magic() {
        let db = running_example_db();
        let bin = rpm_timeseries::to_bytes(&db);
        assert_eq!(decode_dataset_body(&bin).unwrap().len(), 12);
        let mut text = Vec::new();
        io::write_timestamped(&db, &mut text).unwrap();
        assert_eq!(decode_dataset_body(&text).unwrap().len(), 12);
        assert!(decode_dataset_body(b"RPMBgarbage").is_err());
    }
}
