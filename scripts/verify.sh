#!/usr/bin/env bash
# Tier-1 verification: the fast, offline gate every change must pass.
# (Tier-2 is `cargo test --workspace --features proptest-tests`; tier-3 is
# scripts/reproduce_all.sh. See CONTRIBUTING.md.)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets --offline -- -D warnings
# Static analysis, gated on the committed baseline: only *new* findings
# fail (stale entries print as notes). Regenerate with --write-baseline.
cargo run -q -p rpm-lint --release --offline -- --json --baseline lint-baseline.json >/dev/null
cargo build --release --offline
cargo build --examples --offline
RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --offline
cargo test -q --offline
# Delta-mining smoke: one tiny rep of the incremental bench, which asserts
# delta == batch bit-identity at every step before writing its report. The
# 32-transaction batch exercises the checkpoint-resumed batch-append path.
cargo run -q -p rpm-bench --release --offline --bin incremental_mining -- \
  --scale 0.05 --chunks 2 --batch-sizes 1,32 --reps 1 \
  --out target/BENCH_incremental_smoke.json

# Durability smoke: serve with a data dir, ingest, SIGKILL, restart, and
# assert the dataset (upload + append) survived the crash. Offline, local
# loopback only. The restart uses a different port: the killed listener's
# connections linger in TIME_WAIT and would make an immediate same-port
# bind flaky.
smoke_dir="$(mktemp -d)"
serve_pid=""
trap 'rm -rf "$smoke_dir"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
rpm=target/release/rpm

wait_healthy() { # port
  for _ in $(seq 50); do
    curl -sf "http://127.0.0.1:$1/v1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "recovery smoke FAILED: server on port $1 never became healthy" >&2
  return 1
}

"$rpm" generate shop --out "$smoke_dir/shop.tsv" --scale 0.02 --seed 7
"$rpm" serve --addr 127.0.0.1:8741 --threads 2 --data-dir "$smoke_dir/data" &
serve_pid=$!
wait_healthy 8741
curl -sf --data-binary @"$smoke_dir/shop.tsv" \
  'http://127.0.0.1:8741/v1/datasets/shop?per=360&min-ps=10&min-rec=1' >/dev/null
# A multi-line batch: journaled as one WAL record and delta-mined in one pass.
printf '999997\tsmoke-item\n999998\tsmoke-item\n999999\tsmoke-item\n' \
  | curl -sf --data-binary @- \
  -X POST http://127.0.0.1:8741/v1/datasets/shop/append >/dev/null
before=$(curl -sf http://127.0.0.1:8741/v1/datasets)
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
"$rpm" serve --addr 127.0.0.1:8742 --threads 2 --data-dir "$smoke_dir/data" &
serve_pid=$!
wait_healthy 8742
after=$(curl -sf http://127.0.0.1:8742/v1/datasets)
curl -sf -X POST http://127.0.0.1:8742/v1/shutdown >/dev/null
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
trap 'rm -rf "$smoke_dir"' EXIT
if [ "$before" != "$after" ]; then
  echo "recovery smoke FAILED: dataset listing changed across SIGKILL+restart" >&2
  echo "  before: $before" >&2
  echo "  after:  $after" >&2
  exit 1
fi
case "$after" in
  *'"name":"shop"'*) echo "recovery smoke: ok (dataset survived SIGKILL)" ;;
  *) echo "recovery smoke FAILED: dataset missing after restart: $after" >&2; exit 1 ;;
esac
rm -rf "$smoke_dir"

# Replication smoke: primary + replica as two real processes over loopback.
# Bootstrap, byte-identical mine, SIGKILL the primary, promote the replica,
# and confirm it accepts writes. Offline; ports distinct from the smoke above.
repl_dir="$(mktemp -d)"
primary_pid=""
replica_pid=""
trap 'rm -rf "$repl_dir"; for p in "$primary_pid" "$replica_pid"; do [ -n "$p" ] && kill "$p" 2>/dev/null || true; done' EXIT

wait_ready() { # port
  for _ in $(seq 100); do
    curl -sf "http://127.0.0.1:$1/v1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "replication smoke FAILED: port $1 never became ready" >&2
  return 1
}

"$rpm" generate shop --out "$repl_dir/shop.tsv" --scale 0.02 --seed 7
"$rpm" serve --addr 127.0.0.1:8744 --threads 2 --data-dir "$repl_dir/primary" \
  --repl-addr 127.0.0.1:8746 &
primary_pid=$!
wait_healthy 8744
curl -sf --data-binary @"$repl_dir/shop.tsv" \
  'http://127.0.0.1:8744/v1/datasets/shop?per=360&min-ps=10&min-rec=1' >/dev/null
"$rpm" serve --addr 127.0.0.1:8745 --threads 2 --data-dir "$repl_dir/replica" \
  --replica-of 127.0.0.1:8746 &
replica_pid=$!
wait_ready 8745
printf '999999\tsmoke-item\n' | curl -sf --data-binary @- \
  -X POST http://127.0.0.1:8744/v1/datasets/shop/append >/dev/null
for _ in $(seq 100); do
  p_list=$(curl -sf http://127.0.0.1:8744/v1/datasets)
  r_list=$(curl -sf http://127.0.0.1:8745/v1/datasets)
  [ "$p_list" = "$r_list" ] && break
  sleep 0.1
done
if [ "$p_list" != "$r_list" ]; then
  echo "replication smoke FAILED: replica never converged with the primary" >&2
  echo "  primary: $p_list" >&2
  echo "  replica: $r_list" >&2
  exit 1
fi
mine='/v1/datasets/shop/mine?per=360&min-ps=10&min-rec=1'
p_mine=$(curl -sf -X POST "http://127.0.0.1:8744$mine")
r_mine=$(curl -sf -X POST "http://127.0.0.1:8745$mine")
if [ "$p_mine" != "$r_mine" ]; then
  echo "replication smoke FAILED: replica mine differs from primary" >&2
  exit 1
fi
kill -9 "$primary_pid"
wait "$primary_pid" 2>/dev/null || true
primary_pid=""
promote=$(curl -sf -X POST http://127.0.0.1:8745/v1/admin/promote)
case "$promote" in
  *'"promoted":true'*) ;;
  *) echo "replication smoke FAILED: promote answered: $promote" >&2; exit 1 ;;
esac
printf '999999\tpost-promote-item\n' | curl -sf --data-binary @- \
  -X POST http://127.0.0.1:8745/v1/datasets/shop/append >/dev/null
curl -sf -X POST http://127.0.0.1:8745/v1/shutdown >/dev/null
wait "$replica_pid" 2>/dev/null || true
replica_pid=""
trap 'rm -rf "$repl_dir"' EXIT
echo "replication smoke: ok (bootstrap, identical mine, promote, write)"
rm -rf "$repl_dir"
