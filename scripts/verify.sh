#!/usr/bin/env bash
# Tier-1 verification: the fast, offline gate every change must pass.
# (Tier-2 is `cargo test --workspace --features proptest-tests`; tier-3 is
# scripts/reproduce_all.sh. See CONTRIBUTING.md.)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo run -q -p rpm-lint --release --offline
cargo build --release --offline
cargo build --examples --offline
RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --offline
cargo test -q --offline
# Delta-mining smoke: one tiny rep of the incremental bench, which asserts
# delta == batch bit-identity at every step before writing its report.
cargo run -q -p rpm-bench --release --offline --bin incremental_mining -- \
  --scale 0.05 --chunks 2 --batch-sizes 1 --reps 1 \
  --out target/BENCH_incremental_smoke.json

# Durability smoke: serve with a data dir, ingest, SIGKILL, restart, and
# assert the dataset (upload + append) survived the crash. Offline, local
# loopback only. The restart uses a different port: the killed listener's
# connections linger in TIME_WAIT and would make an immediate same-port
# bind flaky.
smoke_dir="$(mktemp -d)"
serve_pid=""
trap 'rm -rf "$smoke_dir"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
rpm=target/release/rpm

wait_healthy() { # port
  for _ in $(seq 50); do
    curl -sf "http://127.0.0.1:$1/v1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "recovery smoke FAILED: server on port $1 never became healthy" >&2
  return 1
}

"$rpm" generate shop --out "$smoke_dir/shop.tsv" --scale 0.02 --seed 7
"$rpm" serve --addr 127.0.0.1:8741 --threads 2 --data-dir "$smoke_dir/data" &
serve_pid=$!
wait_healthy 8741
curl -sf --data-binary @"$smoke_dir/shop.tsv" \
  'http://127.0.0.1:8741/v1/datasets/shop?per=360&min-ps=10&min-rec=1' >/dev/null
printf '999999\tsmoke-item\n' | curl -sf --data-binary @- \
  -X POST http://127.0.0.1:8741/v1/datasets/shop/append >/dev/null
before=$(curl -sf http://127.0.0.1:8741/v1/datasets)
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
"$rpm" serve --addr 127.0.0.1:8742 --threads 2 --data-dir "$smoke_dir/data" &
serve_pid=$!
wait_healthy 8742
after=$(curl -sf http://127.0.0.1:8742/v1/datasets)
curl -sf -X POST http://127.0.0.1:8742/v1/shutdown >/dev/null
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
trap 'rm -rf "$smoke_dir"' EXIT
if [ "$before" != "$after" ]; then
  echo "recovery smoke FAILED: dataset listing changed across SIGKILL+restart" >&2
  echo "  before: $before" >&2
  echo "  after:  $after" >&2
  exit 1
fi
case "$after" in
  *'"name":"shop"'*) echo "recovery smoke: ok (dataset survived SIGKILL)" ;;
  *) echo "recovery smoke FAILED: dataset missing after restart: $after" >&2; exit 1 ;;
esac
rm -rf "$smoke_dir"
