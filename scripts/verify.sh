#!/usr/bin/env bash
# Tier-1 verification: the fast, offline gate every change must pass.
# (Tier-2 is `cargo test --workspace --features proptest-tests`; tier-3 is
# scripts/reproduce_all.sh. See CONTRIBUTING.md.)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo run -q -p rpm-lint --release --offline
cargo build --release --offline
cargo build --examples --offline
RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --offline
cargo test -q --offline
# Delta-mining smoke: one tiny rep of the incremental bench, which asserts
# delta == batch bit-identity at every step before writing its report.
cargo run -q -p rpm-bench --release --offline --bin incremental_mining -- \
  --scale 0.05 --chunks 2 --batch-sizes 1 --reps 1 \
  --out target/BENCH_incremental_smoke.json
