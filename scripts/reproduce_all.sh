#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation plus the
# repository's own ablations, writing outputs to results/.
#
# Usage: scripts/reproduce_all.sh [SCALE] [SEED]
#   SCALE  dataset compression in (0,1]; 0.25 (default) runs in minutes,
#          1.0 reproduces paper-sized inputs.
#   SEED   generator seed (default 1).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-0.25}"
SEED="${2:-1}"
mkdir -p results

echo "== building (release) =="
cargo build --workspace --release --bins

run() {
    local bin="$1"
    echo "== $bin (scale=$SCALE seed=$SEED) =="
    cargo run -q -p rpm-bench --release --bin "$bin" -- \
        --scale "$SCALE" --seed "$SEED" | tee "results/$bin.txt"
}

# Paper artifacts (DESIGN.md E1–E7).
run table5
run fig7
run table6
run fig8
run table7
run fig9
run table8

# Ablations and extensions (A1–A4, X1–X4).
run ablation_pruning
run memory_footprint
run scalability
run noise_sensitivity
run incremental_mining
run merge_analysis
run model_zoo

# Robustness: Table-5 cells across seeds (uses --seeds internally).
echo "== seed_variance =="
cargo run -q -p rpm-bench --release --bin seed_variance -- \
    --scale "$SCALE" --seeds 5 | tee results/seed_variance.txt

echo "== building HTML report =="
cargo run -q -p rpm-bench --release --bin report

echo "== done; outputs in results/ (open results/index.html) =="
