//! End-to-end oracle test: the paper's running example (Table 1 → Table 2,
//! Examples 1–11) exercised through the full public API, across all three
//! recurring-pattern miners.

use recurring_patterns::core::{apriori_rp, apriori_support_only, brute_force};
use recurring_patterns::prelude::*;

fn db() -> TransactionDb {
    recurring_patterns::timeseries::running_example_db()
}

fn params() -> RpParams {
    RpParams::new(2, 3, 2)
}

/// Table 2 rendered through the public display API.
const TABLE_2: [&str; 8] = [
    "{a} [support=8, recurrence=2, {[1,4]:4}, {[11,14]:3}]",
    "{b} [support=7, recurrence=2, {[1,4]:3}, {[11,14]:3}]",
    "{d} [support=6, recurrence=2, {[2,5]:3}, {[9,12]:3}]",
    "{e} [support=6, recurrence=2, {[3,6]:3}, {[10,12]:3}]",
    "{f} [support=6, recurrence=2, {[3,6]:3}, {[10,12]:3}]",
    "{a,b} [support=7, recurrence=2, {[1,4]:3}, {[11,14]:3}]",
    "{c,d} [support=6, recurrence=2, {[2,5]:3}, {[9,12]:3}]",
    "{e,f} [support=6, recurrence=2, {[3,6]:3}, {[10,12]:3}]",
];

#[test]
fn rp_growth_reproduces_table_2() {
    let db = db();
    let result = RpGrowth::new(params()).mine(&db);
    let rendered: Vec<String> =
        result.patterns.iter().map(|p| p.display(db.items()).to_string()).collect();
    assert_eq!(rendered, TABLE_2);
}

#[test]
fn all_three_miners_agree_on_the_running_example() {
    let db = db();
    let resolved = params().resolve(db.len());
    let growth = RpGrowth::new(params()).mine(&db).patterns;
    let (apriori, _) = apriori_rp(&db, resolved);
    let (weak, _) = apriori_support_only(&db, resolved);
    let brute = brute_force(&db, resolved);
    assert_eq!(growth, apriori);
    assert_eq!(growth, weak);
    assert_eq!(growth, brute);
}

#[test]
fn every_pattern_verifies_and_non_patterns_do_not() {
    let db = db();
    let resolved = params().resolve(db.len());
    let result = RpGrowth::new(params()).mine(&db);
    verify_all(&db, &result.patterns, resolved).expect("output verifies");
    // 'c' alone is NOT recurring (Example 10) even though 'cd' is.
    let c = db.items().id("c").unwrap();
    let ts = db.timestamps_of(&[c]);
    assert!(get_recurrence(&ts, resolved).is_none());
}

#[test]
fn example_2_and_3_support_and_timestamps() {
    let db = db();
    let ab = db.pattern_ids(&["a", "b"]).unwrap();
    assert_eq!(db.timestamps_of(&ab), vec![1, 3, 4, 7, 11, 12, 14]);
    assert_eq!(db.support(&ab), 7);
}

#[test]
fn example_9_equation_1_format() {
    let db = db();
    let result = RpGrowth::new(params()).mine(&db);
    let ab = {
        let mut v = db.pattern_ids(&["a", "b"]).unwrap();
        v.sort_unstable();
        v
    };
    let p = result.patterns.iter().find(|p| p.items == ab).unwrap();
    assert_eq!(p.support, 7);
    assert_eq!(p.recurrence(), 2);
    assert_eq!(
        p.display(db.items()).to_string(),
        "{a,b} [support=7, recurrence=2, {[1,4]:3}, {[11,14]:3}]"
    );
}

#[test]
fn loosening_each_threshold_grows_the_output_monotonically() {
    let db = db();
    let base = RpGrowth::new(RpParams::new(2, 3, 2)).mine(&db).patterns.len();
    for (per, min_ps, min_rec) in [(3, 3, 2), (2, 2, 2), (2, 3, 1)] {
        let looser = RpGrowth::new(RpParams::new(per, min_ps, min_rec)).mine(&db).patterns.len();
        assert!(
            looser >= base,
            "loosening to per={per} minPS={min_ps} minRec={min_rec} lost patterns"
        );
    }
}
