//! Fault-injection tests of the durable serving layer: a server is started
//! with a data directory, fed over the /v1 HTTP surface, then "crashed" —
//! the handle is dropped without the graceful-shutdown snapshot flush, so
//! the next bind sees exactly what an abrupt process death would leave on
//! disk: a WAL tail past the last snapshot, possibly torn or bit-flipped.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

use recurring_patterns::server::{FsyncPolicy, PersistConfig, Server, ServerConfig, ServerHandle};

struct Http {
    status: u16,
    headers: HashMap<String, String>,
    body: String,
}

impl Http {
    fn header(&self, name: &str) -> &str {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str).unwrap_or("")
    }
}

fn parse_response(raw: &str) -> Http {
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body separator");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let declared: usize =
        headers.get("content-length").expect("Content-Length").parse().expect("numeric length");
    assert_eq!(body.len(), declared, "body truncated mid-write: {status_line}");
    Http { status, headers, body: body.to_string() }
}

fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> Http {
    let raw = format!("{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    parse_response(&out)
}

fn running_example_text() -> String {
    let db = recurring_patterns::timeseries::running_example_db();
    let mut out = Vec::new();
    recurring_patterns::timeseries::io::write_timestamped(&db, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

/// A fresh per-test data directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rpm-server-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create data dir");
    dir
}

fn bind_durable(dir: &Path, snapshot_every: u64) -> ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        queue_depth: 8,
        persist: Some(PersistConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Always,
            snapshot_every,
        }),
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// Drops the handle without `join()`, skipping the graceful final-snapshot
/// flush — the closest in-process stand-in for SIGKILL. Everything the
/// server acknowledged is already in the WAL (writes are journalled before
/// they are applied), but no snapshot of the post-crash state exists.
fn crash(handle: ServerHandle) {
    handle.shutdown();
    drop(handle);
}

/// Pulls `"fingerprint":"…"` for `name` out of the `GET /v1/datasets` body.
fn fingerprint_of(addr: SocketAddr, name: &str) -> String {
    let list = request(addr, "GET", "/v1/datasets", "");
    assert_eq!(list.status, 200, "{}", list.body);
    let row_at = list.body.find(&format!("\"name\":\"{name}\"")).expect("dataset listed");
    let tail = &list.body[row_at..];
    let needle = "\"fingerprint\":\"";
    let at = tail.find(needle).expect("fingerprint field") + needle.len();
    tail[at..at + 16].to_string()
}

const MINE: &str = "/v1/datasets/shop/mine?per=2&min-ps=3&min-rec=2";

#[test]
fn kill_and_restart_round_trips_fingerprint_and_mine_output() {
    let dir = temp_dir("roundtrip");
    let first = bind_durable(&dir, 1024);
    let addr = first.addr();
    assert_eq!(request(addr, "POST", "/v1/datasets/shop", &running_example_text()).status, 201);
    assert_eq!(request(addr, "POST", "/v1/datasets/shop/append", "20\tbread\tjam\n").status, 200);
    let before_fp = fingerprint_of(addr, "shop");
    let before = request(addr, "POST", MINE, "");
    assert_eq!(before.status, 200, "{}", before.body);
    crash(first);

    let second = bind_durable(&dir, 1024);
    let report = second.recovery().expect("durable bind reports recovery");
    assert_eq!(report.recovered, vec!["shop".to_string()]);
    assert!(report.skipped.is_empty(), "{:?}", report.skipped);
    let addr = second.addr();
    assert_eq!(fingerprint_of(addr, "shop"), before_fp, "recovered fingerprint differs");
    let after = request(addr, "POST", MINE, "");
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(after.body, before.body, "recovered mine output is not byte-identical");

    // Appends keep working after recovery: the WAL picked up where it left.
    assert_eq!(request(addr, "POST", "/v1/datasets/shop/append", "21\tbread\n").status, 200);
    second.shutdown();
    second.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_truncated_and_the_surviving_prefix_served() {
    let dir = temp_dir("torn");
    let first = bind_durable(&dir, 1024);
    let addr = first.addr();
    assert_eq!(request(addr, "POST", "/v1/datasets/shop", &running_example_text()).status, 201);
    let clean_fp = fingerprint_of(addr, "shop");
    assert_eq!(request(addr, "POST", "/v1/datasets/shop/append", "20\tbread\tjam\n").status, 200);
    crash(first);

    // Tear the last record: chop a few bytes off the WAL, as a crashed
    // kernel flush would.
    let wal = dir.join("shop.wal");
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    let file = std::fs::OpenOptions::new().write(true).open(&wal).expect("open wal");
    file.set_len(len - 3).expect("tear tail");
    drop(file);

    let second = bind_durable(&dir, 1024);
    let addr = second.addr();
    // The torn append is gone; the registered upload before it survives.
    assert_eq!(fingerprint_of(addr, "shop"), clean_fp, "prefix before the tear must survive");
    let metrics = request(addr, "GET", "/v1/metrics", "");
    assert!(metrics.body.contains("\"torn_tail_truncations\": 1"), "{}", metrics.body);
    let mined = request(addr, "POST", MINE, "");
    assert_eq!(mined.status, 200, "{}", mined.body);
    second.shutdown();
    second.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_wal_record_is_dropped_with_everything_after_it() {
    let dir = temp_dir("bitflip");
    let first = bind_durable(&dir, 1024);
    let addr = first.addr();
    assert_eq!(request(addr, "POST", "/v1/datasets/shop", &running_example_text()).status, 201);
    let clean_fp = fingerprint_of(addr, "shop");
    let clean_len = std::fs::metadata(dir.join("shop.wal")).expect("wal").len();
    assert_eq!(request(addr, "POST", "/v1/datasets/shop/append", "20\tbread\tjam\n").status, 200);
    crash(first);

    // Flip one payload bit inside the append record; its CRC no longer
    // matches, so recovery must stop right before it and truncate.
    let wal = dir.join("shop.wal");
    let mut bytes = std::fs::read(&wal).expect("read wal");
    let at = clean_len as usize + 10; // inside the appended record
    bytes[at] ^= 0x40;
    std::fs::write(&wal, &bytes).expect("rewrite wal");

    let second = bind_durable(&dir, 1024);
    let addr = second.addr();
    assert_eq!(fingerprint_of(addr, "shop"), clean_fp, "state rolls back to the last good record");
    assert_eq!(std::fs::metadata(&wal).expect("wal").len(), clean_len, "corrupt tail truncated");
    let mined = request(addr, "POST", MINE, "");
    assert_eq!(mined.status, 200, "{}", mined.body);
    second.shutdown();
    second.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_snapshot_plus_wal_tail_replays_to_the_latest_state() {
    let dir = temp_dir("stale-snap");
    // snapshot_every=2: the register + first append trigger a snapshot;
    // later appends live only in the WAL tail.
    let first = bind_durable(&dir, 2);
    let addr = first.addr();
    assert_eq!(request(addr, "POST", "/v1/datasets/shop", &running_example_text()).status, 201);
    assert_eq!(request(addr, "POST", "/v1/datasets/shop/append", "20\tbread\tjam\n").status, 200);
    assert!(dir.join("shop.snap").exists(), "snapshot must have been cut");
    assert_eq!(request(addr, "POST", "/v1/datasets/shop/append", "21\tbread\n").status, 200);
    assert_eq!(request(addr, "POST", "/v1/datasets/shop/append", "22\tbread\tjam\n").status, 200);
    let before_fp = fingerprint_of(addr, "shop");
    let before = request(addr, "POST", MINE, "");
    crash(first);

    let second = bind_durable(&dir, 2);
    let addr = second.addr();
    assert_eq!(fingerprint_of(addr, "shop"), before_fp, "WAL tail must replay over the snapshot");
    let after = request(addr, "POST", MINE, "");
    assert_eq!(after.body, before.body);
    let metrics = request(addr, "GET", "/v1/metrics", "");
    assert!(metrics.body.contains("\"recovered_datasets\": 1"), "{}", metrics.body);
    // Recovered responses still speak the versioned surface.
    assert_eq!(after.header("deprecation"), "", "/v1 is not deprecated");
    second.shutdown();
    second.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn measure_checkpoints_survive_replay_and_keep_batch_appends_on_the_delta_path() {
    let dir = temp_dir("warm-delta");
    let first = bind_durable(&dir, 1024);
    let addr = first.addr();
    // The running example plus sparse `pad` rows: a 20-transaction base so a
    // six-row batch stays under the delta planner's tail budget.
    let mut text = running_example_text();
    for ts in [20, 26, 32, 38, 44, 50, 56, 62] {
        text.push_str(&format!("{ts}\tpad\n"));
    }
    let up = request(addr, "POST", "/v1/datasets/shop?per=2&min-ps=3&min-rec=2", &text);
    assert_eq!(up.status, 201, "{}", up.body);
    assert_eq!(request(addr, "POST", MINE, "").status, 200);
    let batch = "70\tz\n71\tz\n72\tz\n76\tz\n77\tz\n78\tz\n";
    let before = request(addr, "POST", "/v1/datasets/shop/append", batch);
    assert_eq!(before.status, 200, "{}", before.body);
    assert!(
        before.body.contains("\"patched\":true"),
        "pre-crash batch full-mined: {}",
        before.body
    );
    crash(first);

    // After replay the warming mine must rebuild the per-item measure
    // checkpoints, so the very first post-restart batch append patches the
    // hot cache in place instead of falling back to a full re-mine.
    let second = bind_durable(&dir, 1024);
    let addr = second.addr();
    let batch = "84\tz\n85\tz\n86\tz\n90\tz\n91\tz\n92\tz\n";
    let after = request(addr, "POST", "/v1/datasets/shop/append", batch);
    assert_eq!(after.status, 200, "{}", after.body);
    assert!(after.body.contains("\"patched\":true"), "recovered store cold: {}", after.body);
    let metrics = request(addr, "GET", "/v1/metrics", "");
    // The metrics collector restarted with the process, so any checkpoint
    // hits it reports were earned by the post-restart delta mine.
    let hits: u64 = metrics
        .body
        .split("\"delta_checkpoint_hits\": ")
        .nth(1)
        .and_then(|t| t.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|n| n.parse().ok())
        .expect("delta_checkpoint_hits in /v1/metrics");
    assert!(hits > 0, "replayed checkpoints never resumed a scan: {}", metrics.body);
    second.shutdown();
    second.join();
    let _ = std::fs::remove_dir_all(&dir);
}
