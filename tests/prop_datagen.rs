//! Property-based tests of the dataset generators: structural invariants
//! that every seed and scale must satisfy (the experiment harness depends
//! on them silently).

use proptest::prelude::*;
use recurring_patterns::datagen::{
    generate_clickstream, generate_quest, generate_twitter, QuestConfig, ShopConfig, TwitterConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Twitter: every minute is a transaction, planted windows lie in
    /// range, and all four Table-6 events ship at any scale and seed.
    #[test]
    fn twitter_structural_invariants(seed in 0u64..1000, pct in 2u32..8) {
        let scale = pct as f64 / 100.0;
        let s = generate_twitter(&TwitterConfig { scale, seed, ..Default::default() });
        let expected = ((177_120.0 * scale) as usize).max(1);
        prop_assert_eq!(s.db.len(), expected);
        prop_assert_eq!(s.planted.len(), 4);
        let (start, end) = s.db.time_span().unwrap();
        for p in &s.planted {
            for &(a, z) in &p.windows {
                prop_assert!(a >= start && z <= end && a < z);
            }
            // Planted labels are interned and occur.
            for l in &p.labels {
                let id = s.db.items().id(l).expect("planted label interned");
                prop_assert!(s.db.support(&[id]) > 0, "{} never occurs", l);
            }
        }
        // Transactions are strictly ordered (TransactionDb invariant).
        prop_assert!(s
            .db
            .transactions()
            .windows(2)
            .all(|w| w[0].timestamp() < w[1].timestamp()));
    }

    /// Clickstream: night troughs leave some minutes empty, the campaign
    /// recurs twice, the flash sale once, at any seed.
    #[test]
    fn clickstream_structural_invariants(seed in 0u64..1000) {
        let s = generate_clickstream(&ShopConfig { scale: 0.05, seed, ..Default::default() });
        let total = (60_480.0 * 0.05) as usize;
        prop_assert!(s.db.len() < total);
        prop_assert!(s.db.len() > total / 3);
        prop_assert_eq!(s.planted[0].windows.len(), 2);
        prop_assert_eq!(s.planted[1].windows.len(), 1);
        // Planted co-occurrences stay inside their windows.
        for p in &s.planted {
            let ids: Vec<_> =
                p.labels.iter().map(|l| s.db.items().id(l).unwrap()).collect();
            for t in s.db.timestamps_of(&ids) {
                prop_assert!(
                    p.windows.iter().any(|&(a, z)| t >= a && t <= z),
                    "{} co-occurs outside its windows at {t}",
                    p.name
                );
            }
        }
    }

    /// Quest: transaction count equals the config, timestamps are the
    /// 1-based index, and the item universe is respected.
    #[test]
    fn quest_structural_invariants(seed in 0u64..1000, n in 200usize..800) {
        let db = generate_quest(&QuestConfig {
            transactions: n,
            seed,
            ..QuestConfig::default()
        });
        prop_assert_eq!(db.len(), n);
        prop_assert!(db.item_count() <= 941);
        prop_assert_eq!(db.transaction(0).timestamp(), 1);
        prop_assert_eq!(db.transaction(n - 1).timestamp(), n as i64);
        prop_assert!(db.transactions().iter().all(|t| !t.is_empty()));
    }

    /// Determinism: identical configs give identical databases.
    #[test]
    fn generators_are_deterministic(seed in 0u64..500) {
        let a = generate_twitter(&TwitterConfig { scale: 0.02, seed, ..Default::default() });
        let b = generate_twitter(&TwitterConfig { scale: 0.02, seed, ..Default::default() });
        prop_assert_eq!(a.db.len(), b.db.len());
        for (x, y) in a.db.transactions().iter().zip(b.db.transactions()) {
            prop_assert_eq!(x.items(), y.items());
        }
    }
}
