//! Seeded equivalence suite for the work-stealing parallel miner: on a pool
//! of planted **and** noise-corrupted databases, `mine_parallel` must
//! produce the exact sequential output — patterns and the algorithmic
//! [`MiningStats`] counters — at every thread count, and a reused
//! [`MineScratch`] must never leak state between runs.

use recurring_patterns::core::{mine_parallel, MineScratch, MiningResult, ResolvedParams};
use recurring_patterns::prelude::*;

/// Batch miner routed through the engine's [`MiningSession`] entry point.
fn mine_resolved(db: &TransactionDb, params: ResolvedParams) -> MiningResult {
    let session = MiningSession::builder().resolved(params).build().expect("valid params");
    session.mine(db).expect("non-empty db").into_result()
}

/// Planted simulations plus dropped/jittered variants: ≥20 databases with
/// known structure and realistic corruption, each paired with paper-style
/// parameters.
fn database_pool() -> Vec<(String, TransactionDb, ResolvedParams)> {
    let mut pool = Vec::new();
    let mut push = |name: String, db: TransactionDb, per: i64, pct: f64, min_rec: usize| {
        let params = RpParams::with_threshold(per, Threshold::pct(pct), min_rec).resolve(db.len());
        pool.push((name, db, params));
    };
    for seed in 1..=5u64 {
        let stream = generate_twitter(&TwitterConfig { scale: 0.015, seed, ..Default::default() });
        let min_rec = (seed as usize % 2) + 1;
        push(format!("twitter-{seed}"), stream.db.clone(), 360, 2.0, min_rec);
        let noisy = inject_noise(&stream.db, &NoiseConfig::drops(0.05, seed));
        push(format!("twitter-{seed}-drops"), noisy, 360, 2.0, min_rec);
    }
    for seed in 1..=5u64 {
        let stream = generate_clickstream(&ShopConfig { scale: 0.04, seed, ..Default::default() });
        let min_rec = (seed as usize % 2) + 1;
        push(format!("shop-{seed}"), stream.db.clone(), 360, 0.6, min_rec);
        let noisy = inject_noise(&stream.db, &NoiseConfig::jitters(2, seed));
        push(format!("shop-{seed}-jitter"), noisy, 360, 0.6, min_rec);
    }
    assert!(pool.len() >= 20, "pool must cover at least 20 databases");
    pool
}

fn assert_same(name: &str, tag: &str, got: &MiningResult, want: &MiningResult) {
    assert_eq!(got.patterns, want.patterns, "{name}: patterns diverged ({tag})");
    assert_eq!(got.stats.normalized(), want.stats.normalized(), "{name}: stats diverged ({tag})");
}

#[test]
fn parallel_output_and_stats_match_sequential_across_thread_counts() {
    for (name, db, params) in database_pool() {
        let seq = mine_resolved(&db, params);
        assert!(!seq.patterns.is_empty(), "{name}: degenerate case, planted structure lost");
        for threads in [1usize, 2, 3, 8] {
            let par = mine_parallel(&db, params, threads);
            assert_same(&name, &format!("threads={threads}"), &par, &seq);
        }
    }
}

#[test]
fn warm_scratch_runs_match_cold_runs_across_the_pool() {
    // One scratch arena across every database and parameter set — the
    // regression test for stale state surviving `MineScratch` reuse.
    let mut scratch = MineScratch::new();
    for (name, db, params) in database_pool() {
        let session = MiningSession::builder().resolved(params).build().expect("valid params");
        let warm =
            session.mine_with_scratch(&db, &mut scratch).expect("non-empty db").into_result();
        let cold = mine_resolved(&db, params);
        assert_same(&name, "warm scratch", &warm, &cold);
    }
}

#[test]
fn parallel_reports_scheduling_counters() {
    let (_, db, params) = database_pool().swap_remove(0);
    let par = mine_parallel(&db, params, 4);
    assert!(par.stats.scratch_bytes_peak > 0, "worker scratch footprint not reported");
    let seq = mine_resolved(&db, params);
    assert!(seq.stats.scratch_bytes_peak > 0);
    assert_eq!(seq.stats.regions_stolen, 0);
}

#[test]
fn parallel_delta_frontier_matches_sequential_across_thread_counts() {
    // The delta miner's work-stealing frontier re-measurement must be
    // bit-identical to its sequential path — and to a batch mine — at every
    // thread count, with independently-evolved stores converging on the
    // same snapshot.
    use recurring_patterns::core::{IncrementalMiner, PatternStore, RunControl};

    for (name, db, params) in database_pool().into_iter().step_by(7) {
        let n = db.len();
        let split = n - (n / 10).clamp(1, 200);
        let feed = |miner: &mut IncrementalMiner, range: std::ops::Range<usize>| {
            for t in &db.transactions()[range] {
                let labels: Vec<&str> = t.items().iter().map(|&i| db.items().label(i)).collect();
                miner.append(t.timestamp(), &labels).expect("in-order append");
            }
        };
        let mut miner = IncrementalMiner::new(params);
        feed(&mut miner, 0..split);
        let mut stores: Vec<PatternStore> = (0..4).map(|_| PatternStore::new()).collect();
        for store in &mut stores {
            miner.mine_delta(store); // warming full mine
        }
        feed(&mut miner, split..n);
        // The oracle mines the miner's own database: item ids are interned
        // in arrival order, which differs from the generator's interning.
        let batch = mine_resolved(miner.db(), params);
        let mut outputs = Vec::new();
        for (store, threads) in stores.iter_mut().zip([1usize, 2, 3, 8]) {
            let (result, abort, stats) = miner.mine_delta_controlled(
                store,
                &RunControl::new(),
                &mut MineScratch::new(),
                threads,
            );
            assert!(abort.is_none(), "{name}: unlimited control aborted");
            assert_eq!(
                result.patterns, batch.patterns,
                "{name}: delta threads={threads} diverged from batch"
            );
            outputs.push((threads, result, stats));
        }
        let (_, seq, seq_stats) = &outputs[0];
        for (threads, par, stats) in &outputs[1..] {
            assert_eq!(seq.patterns, par.patterns, "{name}: threads={threads}");
            assert_eq!(
                seq.stats.normalized(),
                par.stats.normalized(),
                "{name}: stats diverged at threads={threads}"
            );
            assert_eq!(
                seq_stats.checkpoint_hits, stats.checkpoint_hits,
                "{name}: resume behaviour diverged at threads={threads}"
            );
        }
    }
}
