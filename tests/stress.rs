//! Stress tests: larger randomized databases than the property suites use,
//! cross-checking the optimised miners against each other and against
//! post-hoc verification. These catch interaction bugs (tree push-up ×
//! conditional pruning × dense prefixes) that tiny proptest cases rarely
//! reach.

use recurring_patterns::core::{apriori_rp, mine_parallel};
use recurring_patterns::prelude::*;
use recurring_patterns::timeseries::Pcg32;

/// Batch miner routed through the engine's [`MiningSession`] entry point.
fn mine_resolved(db: &TransactionDb, params: ResolvedParams) -> MiningResult {
    let session = MiningSession::builder().resolved(params).build().expect("valid params");
    session.mine(db).expect("non-empty db").into_result()
}

/// A mid-size random database: `n_items` items over `span` stamps with a
/// popularity-skewed occurrence probability and occasional burst windows.
fn stress_db(seed: u64, n_items: usize, span: i64) -> TransactionDb {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut b = TransactionDb::builder();
    let labels: Vec<String> = (0..n_items).map(|i| format!("x{i}")).collect();
    // Each item gets a base rate and one hot window with boosted rate.
    let profiles: Vec<(f64, i64, i64)> = (0..n_items)
        .map(|i| {
            let base = 0.4 / (i + 1) as f64;
            let start = rng.random_range(0..span / 2);
            (base, start, start + span / 4)
        })
        .collect();
    for ts in 0..span {
        let mut items: Vec<&str> = Vec::new();
        for (i, &(base, lo, hi)) in profiles.iter().enumerate() {
            let p = if ts >= lo && ts <= hi { (base * 6.0).min(0.9) } else { base };
            if rng.random_f64() < p {
                items.push(&labels[i]);
            }
        }
        if !items.is_empty() {
            b.add_labeled(ts, &items);
        }
    }
    b.build()
}

#[test]
fn growth_apriori_and_parallel_agree_on_mid_size_databases() {
    for seed in [1u64, 2, 3] {
        let db = stress_db(seed, 14, 1500);
        for (per, min_ps, min_rec) in [(5, 10, 1), (3, 5, 2), (10, 20, 2), (2, 3, 3)] {
            let params = ResolvedParams::new(per, min_ps, min_rec);
            let growth = mine_resolved(&db, params);
            let (apriori, _) = apriori_rp(&db, params);
            assert_eq!(
                growth.patterns, apriori,
                "seed={seed} per={per} minPS={min_ps} minRec={min_rec}"
            );
            let parallel = mine_parallel(&db, params, 4);
            assert_eq!(growth.patterns, parallel.patterns);
            verify_all(&db, &growth.patterns, params)
                .unwrap_or_else(|(i, e)| panic!("pattern {i}: {e}"));
        }
    }
}

#[test]
fn dense_prefix_sharing_database() {
    // Heavy prefix overlap: every transaction contains the head items, so
    // the tree has long shared spines and deep conditional recursion.
    let mut b = TransactionDb::builder();
    let mut rng = Pcg32::seed_from_u64(9);
    for ts in 0..800i64 {
        let mut items = vec!["h0", "h1", "h2"]; // always-on spine
        for i in 3..10 {
            if rng.random_f64() < 0.3 {
                items.push(["x3", "x4", "x5", "x6", "x7", "x8", "x9"][i - 3]);
            }
        }
        b.add_labeled(ts, &items);
    }
    let db = b.build();
    let params = ResolvedParams::new(2, 50, 1);
    let growth = mine_resolved(&db, params);
    let (apriori, _) = apriori_rp(&db, params);
    assert_eq!(growth.patterns, apriori);
    // The spine subsets must all recur with one full-span interval.
    let spine = {
        let mut v = db.pattern_ids(&["h0", "h1", "h2"]).unwrap();
        v.sort_unstable();
        v
    };
    let p = growth.patterns.iter().find(|p| p.items == spine).expect("spine recurs");
    assert_eq!(p.support, 800);
    assert_eq!(p.recurrence(), 1);
    assert_eq!(p.intervals[0].periodic_support, 800);
}

#[test]
fn adversarial_timestamp_layouts() {
    // Exponentially growing gaps: every per value splits at a different
    // prefix; exercises interval logic away from uniform spacing.
    let mut b = TransactionDb::builder();
    let mut ts = 0i64;
    for k in 0..14 {
        b.add_labeled(ts, &["e", "f"]);
        ts += 1 << k;
    }
    let db = b.build();
    for per in [1i64, 2, 4, 8, 64, 1 << 13] {
        let params = ResolvedParams::new(per, 2, 1);
        let growth = mine_resolved(&db, params);
        let (apriori, _) = apriori_rp(&db, params);
        assert_eq!(growth.patterns, apriori, "per={per}");
        verify_all(&db, &growth.patterns, params).unwrap();
    }
    // The spectrum agrees with mining at every breakpoint.
    let ids = db.pattern_ids(&["e", "f"]).unwrap();
    let tl = db.timestamps_of(&ids);
    let spectrum = recurring_patterns::core::recurrence_spectrum(&tl, 2);
    for step in &spectrum {
        if step.per == 0 {
            continue;
        }
        let params = ResolvedParams::new(step.per, 2, 1);
        let mined = mine_resolved(&db, params);
        let pat = mined.patterns.iter().find(|p| {
            let mut v = ids.clone();
            v.sort_unstable();
            p.items == v
        });
        assert_eq!(
            pat.map_or(0, |p| p.recurrence()),
            step.interesting,
            "spectrum disagrees with mining at per={}",
            step.per
        );
    }
}
