//! Full-scale simulator fidelity — the DESIGN.md cardinality claims checked
//! at `scale = 1.0`. Ignored by default (each generation takes tens of
//! seconds); run with:
//!
//! ```text
//! cargo test --release --test full_scale -- --ignored
//! ```

use recurring_patterns::prelude::*;

#[test]
#[ignore = "full-scale generation; run explicitly with -- --ignored"]
fn twitter_full_scale_matches_paper_cardinalities() {
    let s = generate_twitter(&TwitterConfig::default());
    // Paper §5.1: 177,120 transactions, 1000 distinct hashtags (+ planted).
    assert_eq!(s.db.len(), 177_120);
    assert!(s.db.item_count() <= 1009);
    assert!(s.db.item_count() >= 950);
    // All four Table 6 events at their calendar positions.
    assert_eq!(s.planted.len(), 4);
    let floods = &s.planted[0];
    assert_eq!(floods.windows[0].0, 51 * 1440 + 68); // 21-Jun 01:08
                                                     // Recovery at the paper's parameters.
    let result = RpGrowth::new(RpParams::with_threshold(360, Threshold::pct(2.0), 1)).mine(&s.db);
    let report = evaluate_recovery(&s.db, &s.planted, &result.patterns);
    assert_eq!(report.pattern_recall(), 1.0);
    assert_eq!(report.window_recall(), 1.0);
}

#[test]
#[ignore = "full-scale generation; run explicitly with -- --ignored"]
fn shop_full_scale_matches_paper_cardinalities() {
    let s = generate_clickstream(&ShopConfig::default());
    // Paper §5.1: 59,240 transactions, 138 items. Our 42-day calendar with
    // night troughs should land within a few percent of the former and
    // exactly on the latter.
    let n = s.db.len() as f64;
    assert!((55_000.0..61_000.0).contains(&n), "|TDB| = {n} strays from the paper's 59,240");
    assert_eq!(s.db.item_count(), 138);
}

#[test]
#[ignore = "full-scale generation; run explicitly with -- --ignored"]
fn quest_full_scale_matches_paper_cardinalities() {
    let db = generate_quest(&QuestConfig::default());
    // Paper §5.1: 100,000 transactions, 941 distinct items, avg size ~10.
    assert_eq!(db.len(), 100_000);
    assert!(db.item_count() >= 900 && db.item_count() <= 941);
    let stats = recurring_patterns::timeseries::DbStats::compute(&db);
    assert!(
        (8.0..12.0).contains(&stats.avg_transaction_len),
        "avg len {}",
        stats.avg_transaction_len
    );
}
