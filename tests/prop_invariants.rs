//! Property-based tests (proptest) of the model's core invariants, over
//! randomly generated timestamp lists and databases.

use proptest::prelude::*;
use recurring_patterns::core::{brute_force, erec, get_recurrence, periodic_intervals, recurrence};
use recurring_patterns::prelude::*;

/// Batch miner routed through the engine's [`MiningSession`] entry point.
fn mine_resolved(db: &TransactionDb, params: ResolvedParams) -> MiningResult {
    let session = MiningSession::builder().resolved(params).build().expect("valid params");
    session.mine(db).expect("non-empty db").into_result()
}

/// Strategy: a sorted, deduplicated timestamp list.
fn ts_list() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::btree_set(0i64..500, 0..60)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>())
}

/// Strategy: a small random transactional database (≤ 7 items, ≤ 50 stamps).
fn small_db() -> impl Strategy<Value = TransactionDb> {
    proptest::collection::vec((0i64..60, proptest::collection::btree_set(0u8..7, 1..4)), 1..50)
        .prop_map(|rows| {
            let mut b = TransactionDb::builder();
            // Pre-intern so ids are stable regardless of row order.
            for i in 0..7u8 {
                b.items_mut().intern(&format!("i{i}"));
            }
            for (ts, items) in rows {
                let labels: Vec<String> = items.iter().map(|i| format!("i{i}")).collect();
                let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                b.add_labeled(ts, &refs);
            }
            b.build()
        })
}

proptest! {
    /// Property 1 of the paper: `Erec(X) ≥ Rec(X)`.
    #[test]
    fn erec_upper_bounds_recurrence(ts in ts_list(), per in 1i64..20, min_ps in 1usize..6) {
        prop_assert!(erec(&ts, per, min_ps) >= recurrence(&ts, per, min_ps));
    }

    /// Maximal periodic runs partition the timestamp list: periodic-supports
    /// sum to the support, runs are disjoint and ordered, and adjacent runs
    /// are separated by a gap greater than `per`.
    #[test]
    fn periodic_intervals_partition(ts in ts_list(), per in 1i64..20) {
        let runs = periodic_intervals(&ts, per);
        let total: usize = runs.iter().map(|r| r.periodic_support).sum();
        prop_assert_eq!(total, ts.len());
        for w in runs.windows(2) {
            prop_assert!(w[0].end < w[1].start);
            prop_assert!(w[1].start - w[0].end > per, "adjacent runs must be un-mergeable");
        }
        for r in &runs {
            prop_assert!(r.start <= r.end);
        }
    }

    /// Property 2 of the paper (anti-monotonicity): removing timestamps
    /// (what moving to a superset pattern does) can only lower `Erec`.
    #[test]
    fn erec_is_anti_monotone_under_removal(
        ts in ts_list(),
        per in 1i64..20,
        min_ps in 1usize..6,
        removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        let mut subset = ts.clone();
        for idx in removals {
            if subset.is_empty() { break; }
            let k = idx.index(subset.len());
            subset.remove(k);
        }
        prop_assert!(
            erec(&ts, per, min_ps) >= erec(&subset, per, min_ps),
            "removing stamps increased Erec"
        );
    }

    /// `get_recurrence` is consistent with the measure functions: it returns
    /// intervals exactly when `Rec ≥ minRec`, and those intervals are the
    /// interesting ones.
    #[test]
    fn get_recurrence_matches_measures(
        ts in ts_list(),
        per in 1i64..20,
        min_ps in 1usize..6,
        min_rec in 1usize..4,
    ) {
        let params = ResolvedParams::new(per, min_ps, min_rec);
        let rec = recurrence(&ts, per, min_ps);
        match get_recurrence(&ts, params) {
            Some(intervals) => {
                prop_assert!(rec >= min_rec);
                prop_assert_eq!(intervals.len(), rec);
                for iv in &intervals {
                    prop_assert!(iv.periodic_support >= min_ps);
                }
            }
            None => prop_assert!(rec < min_rec),
        }
    }

    /// RP-growth equals exhaustive enumeration on arbitrary small databases.
    #[test]
    fn growth_equals_brute_force(
        db in small_db(),
        per in 1i64..10,
        min_ps in 1usize..4,
        min_rec in 1usize..3,
    ) {
        let params = ResolvedParams::new(per, min_ps, min_rec);
        let growth = mine_resolved(&db, params).patterns;
        let brute = brute_force(&db, params);
        prop_assert_eq!(growth, brute);
    }

    /// Everything RP-growth reports survives independent re-verification.
    #[test]
    fn mined_patterns_verify(db in small_db(), per in 1i64..10, min_ps in 1usize..4) {
        let params = ResolvedParams::new(per, min_ps, 1);
        let result = mine_resolved(&db, params);
        prop_assert!(verify_all(&db, &result.patterns, params).is_ok());
    }

    /// Tightening any threshold never adds patterns (output monotonicity in
    /// the constraints).
    #[test]
    fn output_shrinks_as_constraints_tighten(db in small_db()) {
        let loose = mine_resolved(&db, ResolvedParams::new(5, 2, 1)).patterns.len();
        for params in [
            ResolvedParams::new(3, 2, 1), // smaller per
            ResolvedParams::new(5, 3, 1), // larger minPS
            ResolvedParams::new(5, 2, 2), // larger minRec
        ] {
            let tight = mine_resolved(&db, params).patterns.len();
            prop_assert!(tight <= loose);
        }
    }

    /// Mining at minRec = k equals mining at minRec = 1 filtered to
    /// Rec ≥ k (the sweep optimisation `MiningResult::filter_min_rec`
    /// relies on).
    #[test]
    fn min_rec_filter_equivalence(
        db in small_db(),
        per in 1i64..8,
        min_ps in 1usize..4,
        min_rec in 2usize..5,
    ) {
        let base = mine_resolved(&db, ResolvedParams::new(per, min_ps, 1));
        let direct = mine_resolved(&db, ResolvedParams::new(per, min_ps, min_rec)).patterns;
        prop_assert_eq!(base.filter_min_rec(min_rec), direct);
    }

    /// The periodic-frequent periodicity measure is anti-monotone too
    /// (baseline sanity): removing stamps can only increase `Per(X)`.
    #[test]
    fn pf_periodicity_grows_under_removal(
        ts in ts_list().prop_filter("need 2+", |v| v.len() >= 2),
        idx in any::<prop::sample::Index>(),
    ) {
        use recurring_patterns::baselines::periodic_frequent::periodicity;
        let (start, end) = (-5, 505);
        let full = periodicity(&ts, start, end).unwrap();
        let mut subset = ts.clone();
        subset.remove(idx.index(subset.len()));
        if let Some(sub) = periodicity(&subset, start, end) {
            prop_assert!(sub >= full);
        }
    }
}
