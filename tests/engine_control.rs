//! End-to-end tests for the engine control plane: cooperative cancellation,
//! wall-clock deadlines, observer event accounting, and the guarantee that
//! the engine wrapper changes nothing about the mined output.
//!
//! Partial results must always be *sound* (every emitted pattern passed the
//! full recurrence test) and a canonically ordered subset of the complete
//! run's output — the engine only ever stops early, it never invents or
//! reorders patterns.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use recurring_patterns::core::engine::PROBE_PERIOD;
use recurring_patterns::core::MiningStats;
use recurring_patterns::prelude::*;

fn test_db() -> (TransactionDb, RpParams) {
    let stream = generate_twitter(&TwitterConfig { scale: 0.02, seed: 7, ..Default::default() });
    (stream.db, RpParams::with_threshold(360, Threshold::pct(2.0), 1))
}

/// Counts every observer event; optionally cancels a token after a fixed
/// number of completed suffix regions.
#[derive(Default)]
struct Recorder {
    phases: Mutex<Vec<Phase>>,
    suffix_events: AtomicUsize,
    last_done: AtomicUsize,
    candidates: AtomicUsize,
    completions: AtomicUsize,
    final_abort: Mutex<Option<Option<AbortReason>>>,
    cancel_after: Option<(usize, CancelToken)>,
}

impl Observer for Recorder {
    fn on_phase(&self, phase: Phase) {
        self.phases.lock().unwrap().push(phase);
    }

    fn on_suffix_done(&self, done: usize, _total: usize) {
        let seen = self.suffix_events.fetch_add(1, Ordering::SeqCst) + 1;
        self.last_done.fetch_max(done, Ordering::SeqCst);
        if let Some((after, token)) = &self.cancel_after {
            if seen >= *after {
                token.cancel();
            }
        }
    }

    fn on_candidate_batch(&self, candidates: usize) {
        self.candidates.fetch_add(candidates, Ordering::SeqCst);
    }

    fn on_complete(&self, _stats: &MiningStats, abort: Option<AbortReason>) {
        self.completions.fetch_add(1, Ordering::SeqCst);
        *self.final_abort.lock().unwrap() = Some(abort);
    }
}

fn full_run(db: &TransactionDb, params: &RpParams) -> MiningResult {
    MiningSession::builder().params(params.clone()).build().unwrap().mine(db).unwrap().into_result()
}

/// Partial output must be an ordered subsequence of the complete run's
/// canonically sorted output: both lists share the (length, items) sort
/// applied at the end of every run, so a sound subset of the full pattern
/// set appears in the same relative order.
fn assert_sound_subset(
    partial: &MiningResult,
    full: &MiningResult,
    db: &TransactionDb,
    params: &RpParams,
) {
    assert!(partial.patterns.len() <= full.patterns.len(), "partial found more than the full run");
    let mut rest = full.patterns.iter();
    for p in &partial.patterns {
        assert!(
            rest.any(|f| f == p),
            "partial pattern {:?} missing from the full output (or out of canonical order)",
            p.items
        );
    }
    let resolved = params.clone().resolve(db.len());
    verify_all(db, &partial.patterns, resolved)
        .unwrap_or_else(|(i, e)| panic!("partial pattern {i} failed verification: {e}"));
}

#[test]
fn cancellation_mid_run_stops_within_a_bounded_number_of_regions() {
    let (db, params) = test_db();
    let full = full_run(&db, &params);
    assert!(full.stats.candidate_items > 8, "workload too small to interrupt");

    let token = CancelToken::new();
    let cancel_at = 3usize;
    let recorder = Arc::new(Recorder {
        cancel_after: Some((cancel_at, token.clone())),
        ..Recorder::default()
    });
    let session = MiningSession::builder()
        .params(params.clone())
        .control(RunControl::new().with_cancel(token))
        .observer(recorder.clone())
        .build()
        .unwrap();
    let outcome = session.mine(&db).unwrap();

    assert!(!outcome.is_complete(), "cancellation must interrupt the run");
    assert_eq!(outcome.abort_reason(), Some(AbortReason::Cancelled));

    // The probe latches a pending cancellation within PROBE_PERIOD polls,
    // and every suffix region polls at least once — so at most PROBE_PERIOD
    // further regions can complete after the token flips.
    let events = recorder.suffix_events.load(Ordering::SeqCst);
    assert!(events >= cancel_at, "cancelled before the trigger region");
    assert!(
        events <= cancel_at + PROBE_PERIOD as usize,
        "cancellation latency too high: {events} regions completed (trigger at {cancel_at})"
    );
    assert!(events < full.stats.candidate_items, "run was not actually interrupted");

    let partial = outcome.into_result();
    assert!(!partial.patterns.is_empty(), "regions completed before the cancel must be kept");
    assert_sound_subset(&partial, &full, &db, &params);
}

#[test]
fn deadline_returns_partial_with_a_sound_subset() {
    let (db, params) = test_db();
    let full = full_run(&db, &params);

    // An already-expired deadline must trip the very first probe poll.
    let session = MiningSession::builder()
        .params(params.clone())
        .control(RunControl::new().with_timeout(Duration::ZERO))
        .build()
        .unwrap();
    let outcome = session.mine(&db).unwrap();
    assert!(!outcome.is_complete());
    assert_eq!(outcome.abort_reason(), Some(AbortReason::DeadlineExceeded));
    assert_sound_subset(outcome.result(), &full, &db, &params);

    // Whatever a tight-but-nonzero deadline allows, the result is sound —
    // complete runs return Complete, interrupted ones Partial.
    for micros in [50u64, 500, 5_000] {
        let session = MiningSession::builder()
            .params(params.clone())
            .control(RunControl::new().with_timeout(Duration::from_micros(micros)))
            .build()
            .unwrap();
        let outcome = session.mine(&db).unwrap();
        if outcome.is_complete() {
            assert_eq!(outcome.result().patterns, full.patterns);
        } else {
            assert_eq!(outcome.abort_reason(), Some(AbortReason::DeadlineExceeded));
            assert_sound_subset(outcome.result(), &full, &db, &params);
        }
    }
}

#[test]
fn observer_event_counts_match_mining_stats_sequentially() {
    let (db, params) = test_db();
    let recorder = Arc::new(Recorder::default());
    let session =
        MiningSession::builder().params(params.clone()).observer(recorder.clone()).build().unwrap();
    let outcome = session.mine(&db).unwrap();
    assert!(outcome.is_complete());
    let stats = outcome.stats();

    // One on_suffix_done per top-level candidate item, batches summing to
    // exactly the explored candidate count, one completion with no abort.
    assert_eq!(recorder.suffix_events.load(Ordering::SeqCst), stats.candidate_items);
    assert_eq!(recorder.last_done.load(Ordering::SeqCst), stats.candidate_items);
    assert_eq!(recorder.candidates.load(Ordering::SeqCst), stats.candidates_checked);
    assert_eq!(recorder.completions.load(Ordering::SeqCst), 1);
    assert_eq!(*recorder.final_abort.lock().unwrap(), Some(None));
    assert_eq!(
        *recorder.phases.lock().unwrap(),
        vec![Phase::ListScan, Phase::TreeBuild, Phase::Growth],
        "phases must arrive exactly once, in execution order"
    );
}

#[test]
fn observer_event_counts_match_mining_stats_in_parallel() {
    let (db, params) = test_db();
    for threads in [2usize, 4] {
        let recorder = Arc::new(Recorder::default());
        let session = MiningSession::builder()
            .params(params.clone())
            .threads(threads)
            .observer(recorder.clone())
            .build()
            .unwrap();
        let outcome = session.mine(&db).unwrap();
        assert!(outcome.is_complete());
        let stats = outcome.stats();
        assert_eq!(recorder.suffix_events.load(Ordering::SeqCst), stats.candidate_items);
        assert_eq!(recorder.last_done.load(Ordering::SeqCst), stats.candidate_items);
        assert_eq!(recorder.candidates.load(Ordering::SeqCst), stats.candidates_checked);
        assert_eq!(recorder.completions.load(Ordering::SeqCst), 1);
        assert_eq!(
            *recorder.phases.lock().unwrap(),
            vec![Phase::ListScan, Phase::TreeBuild, Phase::Growth]
        );
    }
}

#[test]
fn engine_wrapper_changes_nothing_about_the_output() {
    let (db, params) = test_db();
    // Native miner, engine sequential path, engine parallel path: identical
    // patterns and identical algorithmic counters.
    let native = RpGrowth::new(params.clone()).mine(&db);
    let seq = full_run(&db, &params);
    assert_eq!(seq.patterns, native.patterns);
    assert_eq!(seq.stats.normalized(), native.stats.normalized());
    for threads in [2usize, 4, 8] {
        let session =
            MiningSession::builder().params(params.clone()).threads(threads).build().unwrap();
        let outcome = session.mine(&db).unwrap();
        assert!(outcome.is_complete());
        let par = outcome.into_result();
        assert_eq!(par.patterns, native.patterns, "threads={threads}");
        assert_eq!(par.stats.normalized(), native.stats.normalized(), "threads={threads}");
    }
}

#[test]
fn parallel_cancellation_halts_all_workers_and_keeps_a_sound_subset() {
    let (db, params) = test_db();
    let token = CancelToken::new();
    let recorder =
        Arc::new(Recorder { cancel_after: Some((2, token.clone())), ..Recorder::default() });
    let session = MiningSession::builder()
        .params(params.clone())
        .threads(4)
        .control(RunControl::new().with_cancel(token))
        .observer(recorder.clone())
        .build()
        .unwrap();
    let outcome = session.mine(&db).unwrap();
    assert!(!outcome.is_complete());
    assert_eq!(outcome.abort_reason(), Some(AbortReason::Cancelled));

    // Which regions completed is scheduler-dependent, but the output is
    // still a sound, canonically ordered subset of the full run's.
    let partial = outcome.into_result();
    let full = full_run(&db, &params);
    assert_sound_subset(&partial, &full, &db, &params);
}

#[test]
fn metrics_collector_captures_phases_and_abort_reasons() {
    let (db, params) = test_db();

    let metrics = Arc::new(MetricsCollector::new());
    let session =
        MiningSession::builder().params(params.clone()).observer(metrics.clone()).build().unwrap();
    let outcome = session.mine(&db).unwrap();
    assert!(metrics.is_complete());
    let snap = metrics.snapshot();
    assert!(snap.abort.is_none());
    assert_eq!(snap.stats.normalized(), outcome.stats().normalized());
    assert_eq!(snap.suffixes_done, outcome.stats().candidate_items);
    assert_eq!(snap.candidates_seen, outcome.stats().candidates_checked);
    let phases: Vec<Phase> = snap.phase_wall.iter().map(|&(p, _)| p).collect();
    assert_eq!(phases, vec![Phase::ListScan, Phase::TreeBuild, Phase::Growth]);
    assert!(snap.peak_scratch_bytes > 0, "scratch high-water mark not reported");
    let json = snap.to_json();
    assert!(json.contains("\"abort\": null") && json.contains("\"growth\""));

    let metrics = Arc::new(MetricsCollector::new());
    let session = MiningSession::builder()
        .params(params.clone())
        .control(RunControl::new().with_timeout(Duration::ZERO))
        .observer(metrics.clone())
        .build()
        .unwrap();
    let outcome = session.mine(&db).unwrap();
    assert!(!outcome.is_complete());
    assert_eq!(metrics.snapshot().abort, Some(AbortReason::DeadlineExceeded));
    assert!(metrics.snapshot().to_json().contains("\"abort\": \"deadline exceeded\""));
}

#[test]
fn empty_database_and_bad_params_are_errors_not_panics() {
    let empty = TransactionDb::builder().build();
    let session = MiningSession::builder().params(RpParams::new(2, 3, 2)).build().unwrap();
    match session.mine(&empty) {
        Err(MiningError::EmptyDatabase) => {}
        other => panic!("expected EmptyDatabase, got {other:?}"),
    }

    let err = RpParams::try_new(0, 3, 2).unwrap_err();
    assert!(err.to_string().contains("per must be positive"), "{err}");
    assert!(MiningSession::builder().build().is_err(), "builder without params must fail");
}
