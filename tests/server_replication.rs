//! End-to-end replication tests over loopback: a primary streaming its WAL
//! to a follower, write fencing, divergence injection through a tampering
//! TCP proxy, and failover promotion.
//!
//! Test choreography sleeps between polls of an eventually-consistent
//! system; the serving-layer no-sleep rule does not apply here.
#![allow(clippy::disallowed_methods)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use recurring_patterns::server::{
    FsyncPolicy, PersistConfig, Persistence, Server, ServerConfig, ServerHandle, WalRecord,
};

struct Http {
    status: u16,
    headers: HashMap<String, String>,
    body: String,
}

impl Http {
    fn header(&self, name: &str) -> &str {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str).unwrap_or("")
    }
}

fn parse_response(raw: &str) -> Http {
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body separator");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Http { status, headers, body: body.to_string() }
}

fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> Http {
    let raw = format!("{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    parse_response(&out)
}

fn running_example_text() -> String {
    let db = recurring_patterns::timeseries::running_example_db();
    let mut out = Vec::new();
    recurring_patterns::timeseries::io::write_timestamped(&db, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rpm-server-repl-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create data dir");
    dir
}

fn durable(dir: &Path) -> Option<PersistConfig> {
    Some(PersistConfig { dir: dir.to_path_buf(), fsync: FsyncPolicy::Never, snapshot_every: 4096 })
}

fn bind_primary(dir: &Path) -> ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        queue_depth: 8,
        persist: durable(dir),
        repl_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .expect("bind primary")
}

fn bind_replica(dir: &Path, primary_repl: &str) -> ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        queue_depth: 8,
        persist: durable(dir),
        replica_of: Some(primary_repl.to_string()),
        ..ServerConfig::default()
    })
    .expect("bind replica")
}

/// Drops the handle without `join()`, skipping the graceful snapshot flush
/// — the closest in-process stand-in for SIGKILL (the real-signal variant
/// lives in scripts/verify.sh).
fn crash(handle: ServerHandle) {
    handle.shutdown();
    drop(handle);
}

/// Polls `probe` until it returns `Some`, panicking after `secs` seconds.
fn wait_for<T>(what: &str, secs: u64, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn fingerprint_of(addr: SocketAddr, name: &str) -> Option<String> {
    let list = request(addr, "GET", "/v1/datasets", "");
    assert_eq!(list.status, 200, "{}", list.body);
    let row_at = list.body.find(&format!("\"name\":\"{name}\""))?;
    let tail = &list.body[row_at..];
    let needle = "\"fingerprint\":\"";
    let at = tail.find(needle)? + needle.len();
    Some(tail[at..at + 16].to_string())
}

/// Waits until `replica` lists `name` with the same fingerprint `primary`
/// currently reports, then returns it.
fn wait_converged(primary: SocketAddr, replica: SocketAddr, name: &str) -> String {
    wait_for(&format!("replica convergence on {name:?}"), 20, || {
        let want = fingerprint_of(primary, name)?;
        let got = fingerprint_of(replica, name)?;
        (want == got).then_some(want)
    })
}

/// Pulls one compact counter out of the `"repl"` group of `/v1/metrics`.
fn repl_counter(addr: SocketAddr, key: &str) -> u64 {
    let metrics = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(metrics.status, 200, "{}", metrics.body);
    let group_at = metrics.body.find("\"repl\":").expect("repl metrics group");
    let tail = &metrics.body[group_at..];
    let needle = format!("\"{key}\":");
    let at = tail.find(&needle).unwrap_or_else(|| panic!("counter {key} in {tail}")) + needle.len();
    tail[at..].chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect(key)
}

const MINE: &str = "/v1/datasets/shop/mine?per=2&min-ps=3&min-rec=2";

#[test]
fn replica_bootstraps_streams_and_stays_byte_identical() {
    let pdir = temp_dir("stream-p");
    let rdir = temp_dir("stream-r");
    let primary = bind_primary(&pdir);
    let paddr = primary.addr();
    let repl_addr = primary.repl_addr().expect("primary repl listener").to_string();

    // State that exists *before* the replica connects exercises bootstrap;
    // hot params match MINE so the cache-warmth check below is meaningful.
    let upload = "/v1/datasets/shop?per=2&min-ps=3&min-rec=2";
    assert_eq!(request(paddr, "POST", upload, &running_example_text()).status, 201);
    assert_eq!(request(paddr, "POST", "/v1/datasets/shop/append", "20\tbread\tjam\n").status, 200);

    let replica = bind_replica(&rdir, &repl_addr);
    let raddr = replica.addr();
    wait_converged(paddr, raddr, "shop");
    wait_for("replica readiness", 20, || {
        (request(raddr, "GET", "/v1/readyz", "").status == 200).then_some(())
    });

    // Live streaming: appends and a brand-new dataset arrive while both
    // ends are up.
    assert_eq!(request(paddr, "POST", "/v1/datasets/shop/append", "21\tbread\n").status, 200);
    assert_eq!(request(paddr, "POST", "/v1/datasets/extra", &running_example_text()).status, 201);
    wait_converged(paddr, raddr, "shop");
    wait_converged(paddr, raddr, "extra");

    // Byte-identical mine output on both ends.
    let p_mine = request(paddr, "POST", MINE, "");
    let r_mine = request(raddr, "POST", MINE, "");
    assert_eq!(p_mine.status, 200, "{}", p_mine.body);
    assert_eq!(r_mine.body, p_mine.body, "replica mine output differs from primary");

    // Cache warmth across the apply path: the mine above warmed the
    // replica's pattern store, so the next shipped append patches its
    // cache entry in place and the re-mine is a hit.
    assert_eq!(request(paddr, "POST", "/v1/datasets/shop/append", "22\tbread\tjam\n").status, 200);
    let fp = wait_converged(paddr, raddr, "shop");
    let p_mine = request(paddr, "POST", MINE, "");
    let r_mine = request(raddr, "POST", MINE, "");
    assert_eq!(r_mine.body, p_mine.body, "post-append mine output differs (fp {fp})");
    assert_eq!(r_mine.header("x-rpm-cache"), "hit", "shipped append should patch the cache");

    // Both metric groups tell the same story.
    assert_eq!(repl_counter(paddr, "followers"), 1);
    assert!(repl_counter(paddr, "records_shipped") >= 3);
    assert!(repl_counter(paddr, "snapshots_shipped") >= 1);
    assert!(repl_counter(raddr, "records_applied") >= 3);
    assert!(repl_counter(raddr, "snapshots_applied") >= 1);
    assert_eq!(repl_counter(raddr, "divergences"), 0);

    replica.shutdown();
    replica.join();
    primary.shutdown();
    primary.join();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn writes_to_the_replica_are_fenced_with_421_at_the_primary() {
    let pdir = temp_dir("fence-p");
    let rdir = temp_dir("fence-r");
    let primary = bind_primary(&pdir);
    let paddr = primary.addr();
    let repl_addr = primary.repl_addr().expect("repl listener").to_string();
    assert_eq!(request(paddr, "POST", "/v1/datasets/shop", &running_example_text()).status, 201);

    let replica = bind_replica(&rdir, &repl_addr);
    let raddr = replica.addr();
    wait_converged(paddr, raddr, "shop");

    // Reads are served locally …
    assert_eq!(request(raddr, "POST", MINE, "").status, 200);
    // … writes answer 421 with the canonical /v1 path at the primary, on
    // both the versioned surface and the deprecated alias.
    let fenced = request(raddr, "POST", "/v1/datasets/shop/append", "20\tbread\n");
    assert_eq!(fenced.status, 421, "{}", fenced.body);
    assert!(fenced.body.contains("\"code\":\"misdirected\""), "{}", fenced.body);
    assert_eq!(fenced.header("location"), format!("http://{paddr}/v1/datasets/shop/append"));
    let legacy = request(raddr, "POST", "/datasets/other", "1\ta\n");
    assert_eq!(legacy.status, 421, "{}", legacy.body);
    assert_eq!(legacy.header("deprecation"), "true");
    assert_eq!(legacy.header("location"), format!("http://{paddr}/v1/datasets/other"));
    // The fenced append never reached either journal.
    assert_eq!(fingerprint_of(paddr, "shop"), fingerprint_of(raddr, "shop"));

    replica.shutdown();
    replica.join();
    primary.shutdown();
    primary.join();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

/// A TCP proxy between follower and primary that, once armed, flips one
/// bit inside the first primary→follower frame whose payload contains the
/// marker, recomputing the frame CRC so the corruption arrives "valid" —
/// modelling silent corruption beyond what checksums catch.
struct TamperProxy {
    addr: String,
    armed: Arc<AtomicBool>,
    tampered: Arc<AtomicBool>,
}

const MARKER: &[u8] = b"zzmarker";

/// CRC-32 (IEEE), bitwise — must match the WAL/replication framing CRC.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl TamperProxy {
    fn spawn(upstream: String) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr").to_string();
        let armed = Arc::new(AtomicBool::new(false));
        let tampered = Arc::new(AtomicBool::new(false));
        {
            let armed = armed.clone();
            let tampered = tampered.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    let Ok(client) = conn else { break };
                    let Ok(server) = TcpStream::connect(&upstream) else { continue };
                    let (armed, tampered) = (armed.clone(), tampered.clone());
                    let (c2, s2) = (
                        client.try_clone().expect("clone client"),
                        server.try_clone().expect("clone server"),
                    );
                    // Follower→primary (acks): raw copy.
                    std::thread::spawn(move || copy_raw(c2, s2));
                    // Primary→follower: frame-aware, tampering copy.
                    std::thread::spawn(move || copy_frames(server, client, &armed, &tampered));
                }
            });
        }
        Self { addr, armed, tampered }
    }

    fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    fn has_tampered(&self) -> bool {
        self.tampered.load(Ordering::SeqCst)
    }
}

fn copy_raw(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = to.shutdown(std::net::Shutdown::Both);
                return;
            }
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
        }
    }
}

fn copy_frames(mut from: TcpStream, mut to: TcpStream, armed: &AtomicBool, tampered: &AtomicBool) {
    loop {
        let mut head = [0u8; 8];
        if from.read_exact(&mut head).is_err() {
            let _ = to.shutdown(std::net::Shutdown::Both);
            return;
        }
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
        if len > 1 << 28 {
            return; // stream out of sync; give up
        }
        let mut payload = vec![0u8; len];
        if from.read_exact(&mut payload).is_err() {
            return;
        }
        if armed.load(Ordering::SeqCst) && !tampered.load(Ordering::SeqCst) {
            if let Some(at) = payload.windows(MARKER.len()).position(|w| w == MARKER) {
                payload[at + MARKER.len() - 1] ^= 0x01; // "zzmarker" → "zzmarkes"
                head[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
                tampered.store(true, Ordering::SeqCst);
            }
        }
        if to.write_all(&head).is_err() || to.write_all(&payload).is_err() {
            return;
        }
    }
}

#[test]
fn injected_bit_flip_is_detected_counted_and_healed_by_resync() {
    let pdir = temp_dir("flip-p");
    let rdir = temp_dir("flip-r");
    let primary = bind_primary(&pdir);
    let paddr = primary.addr();
    let repl_addr = primary.repl_addr().expect("repl listener").to_string();
    assert_eq!(request(paddr, "POST", "/v1/datasets/shop", &running_example_text()).status, 201);

    let proxy = TamperProxy::spawn(repl_addr);
    let replica = bind_replica(&rdir, &proxy.addr);
    let raddr = replica.addr();
    wait_converged(paddr, raddr, "shop");

    // Corrupt the next live record mid-flight. The follower applies the
    // tampered row, its fingerprint walks off the primary's chain, and
    // both ends must notice from the very next acknowledgement.
    proxy.arm();
    assert_eq!(request(paddr, "POST", "/v1/datasets/shop/append", "20\tzzmarker\n").status, 200);
    wait_for("the proxy to corrupt a frame", 20, || proxy.has_tampered().then_some(()));
    wait_for("divergence detection on both ends", 20, || {
        (repl_counter(paddr, "divergences") >= 1 && repl_counter(raddr, "divergences") >= 1)
            .then_some(())
    });
    wait_for("a forced resync", 20, || {
        (repl_counter(paddr, "forced_resyncs") >= 1 && repl_counter(raddr, "resyncs") >= 1)
            .then_some(())
    });

    // The re-bootstrap (now through the clean proxy) heals the replica:
    // same fingerprint, byte-identical mine output, marker row intact.
    wait_converged(paddr, raddr, "shop");
    let p_mine = request(paddr, "POST", MINE, "");
    let r_mine = request(raddr, "POST", MINE, "");
    assert_eq!(r_mine.body, p_mine.body, "replica failed to reconverge after divergence");

    replica.shutdown();
    replica.join();
    primary.shutdown();
    primary.join();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn promotion_lifts_the_fence_and_continues_the_journal_without_gaps() {
    let pdir = temp_dir("promote-p");
    let rdir = temp_dir("promote-r");
    let primary = bind_primary(&pdir);
    let paddr = primary.addr();
    let repl_addr = primary.repl_addr().expect("repl listener").to_string();
    assert_eq!(request(paddr, "POST", "/v1/datasets/shop", &running_example_text()).status, 201);
    assert_eq!(request(paddr, "POST", "/v1/datasets/shop/append", "20\tbread\tjam\n").status, 200);

    let replica = bind_replica(&rdir, &repl_addr);
    let raddr = replica.addr();
    wait_converged(paddr, raddr, "shop");
    wait_for("replica readiness", 20, || {
        (request(raddr, "GET", "/v1/readyz", "").status == 200).then_some(())
    });

    // Promoting the *primary* is refused; it never was a replica.
    assert_eq!(request(paddr, "POST", "/v1/admin/promote", "").status, 409);

    // The primary dies; the caught-up replica is promoted and takes writes.
    crash(primary);
    let promoted = request(raddr, "POST", "/v1/admin/promote", "");
    assert_eq!(promoted.status, 200, "{}", promoted.body);
    assert!(promoted.body.contains("\"promoted\":true"), "{}", promoted.body);
    let ready = request(raddr, "GET", "/v1/readyz", "");
    assert_eq!(ready.status, 200, "{}", ready.body);
    assert!(ready.body.contains("\"role\":\"promoted\""), "{}", ready.body);
    assert_eq!(request(raddr, "POST", "/v1/admin/promote", "").status, 409, "second promote");

    assert_eq!(request(raddr, "POST", "/v1/datasets/shop/append", "21\tbread\n").status, 200);
    assert_eq!(request(raddr, "POST", "/v1/datasets/shop/append", "22\tbread\tjam\n").status, 200);
    assert_eq!(request(raddr, "POST", MINE, "").status, 200);
    let promoted_fp = fingerprint_of(raddr, "shop").expect("promoted fingerprint");
    // Crash (no graceful flush, which would fold the WAL into a final
    // snapshot) so the journal is left exactly as the appends wrote it.
    crash(replica);

    // The journal on disk is one contiguous sequence: the bootstrap
    // snapshot at seq N, then WAL records N+1, N+2, … across the handoff —
    // a later node can replicate or recover from the promoted one with no
    // seam.
    let persist = Persistence::open(durable(&rdir).unwrap()).expect("reopen replica dir");
    let (header, _) = persist.load_snapshot("shop").expect("replica snapshot");
    let replay = persist.read_wal("shop").expect("read wal").expect("wal exists");
    assert!(!replay.records.is_empty(), "promoted appends must be journalled");
    let mut want = header.seq;
    for record in &replay.records {
        want += 1;
        assert_eq!(record.seq(), want, "journal gap at seq {want}");
        assert!(matches!(record, WalRecord::Append { .. }));
    }
    drop(persist);

    // And recovery over that journal reproduces the promoted state.
    let reborn = bind_primary(&rdir);
    assert_eq!(fingerprint_of(reborn.addr(), "shop").as_deref(), Some(promoted_fp.as_str()));
    reborn.shutdown();
    reborn.join();

    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn readyz_reports_not_ready_until_bootstrap_and_force_promote_overrides() {
    // A primary that answers readiness trivially.
    let pdir = temp_dir("ready-p");
    let primary = bind_primary(&pdir);
    let ready = request(primary.addr(), "GET", "/v1/readyz", "");
    assert_eq!(ready.status, 200, "{}", ready.body);
    assert!(ready.body.contains("\"role\":\"primary\""), "{}", ready.body);
    crash(primary);

    // A replica chasing a primary that will never answer: alive but not
    // ready, and promotion is refused until forced.
    let dead_port = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr").to_string()
        // listener drops here; connections to the port are refused
    };
    let rdir = temp_dir("ready-r");
    let replica = bind_replica(&rdir, &dead_port);
    let raddr = replica.addr();
    assert_eq!(request(raddr, "GET", "/v1/healthz", "").status, 200, "liveness is unaffected");
    let ready = request(raddr, "GET", "/v1/readyz", "");
    assert_eq!(ready.status, 503, "{}", ready.body);
    assert!(ready.body.contains("\"code\":\"not_ready\""), "{}", ready.body);
    assert_eq!(request(raddr, "POST", "/v1/admin/promote", "").status, 409, "not bootstrapped");
    let forced = request(raddr, "POST", "/v1/admin/promote?force=true", "");
    assert_eq!(forced.status, 200, "{}", forced.body);
    assert_eq!(request(raddr, "GET", "/v1/readyz", "").status, 200, "promoted node is ready");
    // A force-promoted empty node accepts writes immediately.
    assert_eq!(request(raddr, "POST", "/v1/datasets/shop", &running_example_text()).status, 201);

    replica.shutdown();
    replica.join();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}
