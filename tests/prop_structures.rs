//! Property-based tests of the structural substrates: the RP-tree arena,
//! the textual IO roundtrip, database construction and slicing.

use proptest::prelude::*;
use recurring_patterns::core::tree::TsTree;
use recurring_patterns::prelude::*;
use recurring_patterns::timeseries::io;

/// Strategy: a batch of tree insertions — (ascending rank paths, timestamps).
fn insertions() -> impl Strategy<Value = Vec<(Vec<u32>, i64)>> {
    proptest::collection::vec((proptest::collection::btree_set(0u32..6, 1..5), 0i64..1000), 1..40)
        .prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                // Distinct timestamps per insertion, as in a real database.
                .map(|(i, (ranks, ts))| (ranks.into_iter().collect(), ts * 100 + i as i64))
                .collect()
        })
}

proptest! {
    /// Lemma 2: the tree never allocates more nodes than the sum of
    /// projection lengths, and prefix sharing keeps it at or below that.
    #[test]
    fn tree_size_is_bounded_by_lemma_2(rows in insertions()) {
        let mut tree = TsTree::new(6);
        let mut total_len = 0usize;
        for (ranks, ts) in &rows {
            tree.insert(ranks, *ts);
            total_len += ranks.len();
        }
        prop_assert!(tree.node_count() <= total_len);
    }

    /// Property 3: every inserted timestamp is stored exactly once, and the
    /// per-rank merged ts-lists (after full bottom-up push-up) recover each
    /// rank's transaction set exactly.
    #[test]
    fn tree_conserves_timestamps_under_push_up(rows in insertions()) {
        let mut tree = TsTree::new(6);
        for (ranks, ts) in &rows {
            tree.insert(ranks, *ts);
        }
        // Expected: for each rank, the set of timestamps whose insertion
        // contained it.
        for rank in (0..6u32).rev() {
            let mut expected: Vec<i64> = rows
                .iter()
                .filter(|(ranks, _)| ranks.contains(&rank))
                .map(|&(_, ts)| ts)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(tree.merged_ts(rank), expected, "rank {}", rank);
            tree.push_up_and_remove(rank);
        }
        prop_assert_eq!(tree.root_ts_len(), rows.len());
    }

    /// The timestamped text format roundtrips every database.
    #[test]
    fn io_roundtrip(rows in proptest::collection::vec(
        (0i64..500, proptest::collection::btree_set(0u8..10, 1..4)), 1..50,
    )) {
        let mut b = TransactionDb::builder();
        for (ts, items) in &rows {
            let labels: Vec<String> = items.iter().map(|i| format!("item{i}")).collect();
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            b.add_labeled(*ts, &refs);
        }
        let db = b.build();
        let mut buf = Vec::new();
        io::write_timestamped(&db, &mut buf).unwrap();
        let back = io::read_timestamped(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), db.len());
        for (a, b_) in db.transactions().iter().zip(back.transactions()) {
            prop_assert_eq!(a.timestamp(), b_.timestamp());
            let mut la: Vec<&str> = a.items().iter().map(|&i| db.items().label(i)).collect();
            let mut lb: Vec<&str> = b_.items().iter().map(|&i| back.items().label(i)).collect();
            la.sort_unstable();
            lb.sort_unstable();
            prop_assert_eq!(la, lb);
        }
    }

    /// The binary format roundtrips arbitrary databases — including the
    /// empty one — exactly, preserving the dataset fingerprint, and
    /// re-encoding the decoded database is byte-stable.
    #[test]
    fn binio_roundtrip(rows in proptest::collection::vec(
        (-500i64..500, proptest::collection::btree_set(0u8..10, 1..4)), 0..50,
    )) {
        let mut b = TransactionDb::builder();
        for (ts, items) in &rows {
            let labels: Vec<String> = items.iter().map(|i| format!("item{i}")).collect();
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            b.add_labeled(*ts, &refs);
        }
        let db = b.build();
        let bytes = recurring_patterns::timeseries::to_bytes(&db);
        let back = recurring_patterns::timeseries::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), db.len());
        for (x, y) in db.transactions().iter().zip(back.transactions()) {
            prop_assert_eq!(x.timestamp(), y.timestamp());
            prop_assert_eq!(x.items(), y.items());
        }
        // The registry keys result caches by this digest: decoding must
        // never change it, and a second encode must reproduce the bytes.
        prop_assert_eq!(
            recurring_patterns::timeseries::fingerprint(&back),
            recurring_patterns::timeseries::fingerprint(&db),
        );
        prop_assert_eq!(recurring_patterns::timeseries::to_bytes(&back), bytes);
    }

    /// Corrupting any single byte of a binary database must produce either
    /// a clean error or a (different but) valid database — never a panic.
    #[test]
    fn binio_survives_single_byte_corruption(
        flip_pos in any::<prop::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        let db = recurring_patterns::timeseries::running_example_db();
        let mut bytes = recurring_patterns::timeseries::to_bytes(&db).to_vec();
        let pos = flip_pos.index(bytes.len());
        bytes[pos] ^= flip_bits;
        // Must not panic; any Ok result must be a structurally sound db.
        if let Ok(parsed) = recurring_patterns::timeseries::from_bytes(&bytes) {
            prop_assert!(parsed
                .transactions()
                .windows(2)
                .all(|w| w[0].timestamp() < w[1].timestamp()));
        }
    }

    /// Slicing then reuniting partitions the database, and slices answer
    /// support queries consistently with the whole.
    #[test]
    fn slicing_partitions_support(
        rows in proptest::collection::vec(
            (0i64..200, proptest::collection::btree_set(0u8..5, 1..4)), 1..40,
        ),
        cut in 0i64..200,
    ) {
        let mut b = TransactionDb::builder();
        for (ts, items) in &rows {
            let labels: Vec<String> = items.iter().map(|i| format!("i{i}")).collect();
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            b.add_labeled(*ts, &refs);
        }
        let db = b.build();
        let (left, right) = split_at(&db, cut);
        prop_assert_eq!(left.len() + right.len(), db.len());
        for item in db.items().iter() {
            let total = db.support(&[item.id]);
            let l = left.support(&[item.id]);
            let r = right.support(&[item.id]);
            prop_assert_eq!(l + r, total, "support of {} not partitioned", item.label);
        }
    }

    /// Projection keeps exactly the kept items' timestamps.
    #[test]
    fn projection_preserves_kept_point_sequences(
        rows in proptest::collection::vec(
            (0i64..200, proptest::collection::btree_set(0u8..6, 1..4)), 1..40,
        ),
        keep_mask in 0u8..63,
    ) {
        let mut b = TransactionDb::builder();
        for i in 0..6u8 {
            b.items_mut().intern(&format!("i{i}"));
        }
        for (ts, items) in &rows {
            let labels: Vec<String> = items.iter().map(|i| format!("i{i}")).collect();
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            b.add_labeled(*ts, &refs);
        }
        let db = b.build();
        let keep: Vec<ItemId> = (0..6u8)
            .filter(|i| keep_mask & (1 << i) != 0)
            .map(|i| db.items().id(&format!("i{i}")).unwrap())
            .collect();
        let proj = project_items(&db, &keep);
        for &k in &keep {
            prop_assert_eq!(proj.timestamps_of(&[k]), db.timestamps_of(&[k]));
        }
        // Dropped items vanish.
        for item in db.items().iter() {
            if !keep.contains(&item.id) {
                prop_assert!(proj.timestamps_of(&[item.id]).is_empty());
            }
        }
    }
}
