//! The §2 related-work claims exercised on simulated data through the
//! facade: each lineage model's characteristic blind spot or strength,
//! demonstrated against the same planted ground truth the recurring-pattern
//! model recovers.

use recurring_patterns::baselines::{
    analyze_pattern, mine_cyclic, mine_infominer, mine_mis, AsyncParams, CyclicParams, InfoParams,
    MisParams,
};
use recurring_patterns::prelude::*;

fn shop() -> recurring_patterns::datagen::SimulatedStream {
    generate_clickstream(&ShopConfig { scale: 0.1, seed: 77, ..Default::default() })
}

#[test]
fn cyclic_model_misses_the_window_bounded_campaign() {
    let stream = shop();
    let db = &stream.db;
    let campaign = {
        let mut v = db.pattern_ids(&["cat-sale", "cat-checkout"]).unwrap();
        v.sort_unstable();
        v
    };
    // Recurring model: found.
    let rp = RpGrowth::new(RpParams::with_threshold(360, Threshold::pct(0.3), 2)).mine(db);
    assert!(rp.patterns.iter().any(|p| p.items == campaign));
    // Cyclic-every-day: the off-season days kill it.
    let (cyclic, units) =
        mine_cyclic(db, &CyclicParams::new(1440, Threshold::Fraction(0.02), vec![1]));
    assert!(units > 2);
    assert!(
        !cyclic.iter().any(|p| p.items == campaign),
        "a window-bounded campaign cannot be frequent in EVERY day"
    );
}

#[test]
fn async_model_reports_progression_chains_for_the_flash_sale() {
    let stream = shop();
    let db = &stream.db;
    let flash = db.pattern_ids(&["cat-flash", "cat-landing"]).unwrap();
    // The flash sale fires probabilistically, not on an exact arithmetic
    // progression, so require only short chains with generous disturbance.
    let params = AsyncParams::new(vec![1, 2, 3], 2, 2000, 6);
    let found = analyze_pattern(db, &flash, &params);
    assert!(!found.is_empty(), "some period must yield a valid subsequence over the flash window");
    for p in &found {
        // All chained segments lie inside the planted flash window.
        let (ws, we) = stream.planted[1].windows[0];
        for s in &p.segments {
            assert!(s.start >= ws && s.end <= we, "chain escaped the window");
        }
    }
}

#[test]
fn mis_and_recurring_both_rescue_the_rare_flash_pair() {
    let stream = shop();
    let db = &stream.db;
    let flash = {
        let mut v = db.pattern_ids(&["cat-flash", "cat-landing"]).unwrap();
        v.sort_unstable();
        v
    };
    let head_support = db.items().iter().map(|i| db.support(&[i.id])).max().unwrap();
    // A single minSup tuned to head items hides the pair…
    let single_threshold = head_support / 4;
    assert!(db.support(&flash) < single_threshold);
    // …MIS rescues it by per-item thresholds…
    let mis = mine_mis(db, &MisParams::new(0.8, 5));
    assert!(mis.iter().any(|p| p.items == flash), "MIS finds the rare pair");
    // …and the recurring model rescues it by local periodic density.
    let rp = RpGrowth::new(RpParams::with_threshold(360, Threshold::pct(0.3), 1)).mine(db);
    assert!(rp.patterns.iter().any(|p| p.items == flash));
}

#[test]
fn infominer_scores_rare_regular_cells_above_common_ones() {
    let stream = shop();
    // Hourly view, daily period — InfoMiner's habitat (see model_zoo).
    let hourly = recurring_patterns::timeseries::rebin(
        &recurring_patterns::timeseries::project_items(
            &stream.db,
            &stream.db.pattern_ids(&["cat-sale", "cat-checkout", "cat-0", "cat-1"]).unwrap(),
        ),
        60,
    );
    let (patterns, segments) = mine_infominer(&hourly, &InfoParams::new(24, 1.0, 0.0));
    assert!(segments > 1);
    assert!(!patterns.is_empty());
    // Per-occurrence information of campaign cells exceeds head-category
    // cells (they are present in fewer segments).
    let sale = hourly.items().id("cat-sale").unwrap();
    let head = hourly.items().id("cat-0").unwrap();
    let best_info = |item| {
        patterns
            .iter()
            .filter(|p| p.cells.len() == 1 && p.cells[0].item == item)
            .map(|p| p.information)
            .fold(0.0f64, f64::max)
    };
    let sale_info = best_info(sale);
    if sale_info > 0.0 && best_info(head) > 0.0 {
        assert!(
            sale_info >= best_info(head),
            "rarer cells must carry at least as much information"
        );
    }
}

#[test]
fn duration_model_finds_long_sparse_seasons_the_count_model_ranks_low() {
    let stream = shop();
    let db = &stream.db;
    // Duration model on the campaign: both windows last for days.
    let (by_duration, _) = mine_durations(db, &DurationParams::new(360, 600, 2));
    let campaign = {
        let mut v = db.pattern_ids(&["cat-sale", "cat-checkout"]).unwrap();
        v.sort_unstable();
        v
    };
    let p = by_duration
        .iter()
        .find(|p| p.items == campaign)
        .expect("campaign lasts long enough in both windows");
    assert_eq!(p.recurrence(), 2);
    for iv in &p.intervals {
        assert!(iv.duration() >= 600);
    }
}
