//! Integration tests for the extension features (the paper's §6 future
//! work) on the simulated datasets: incremental mining, noise-tolerant
//! mining, condensations, top-k and rules — all through the facade API.

use recurring_patterns::prelude::*;

#[test]
fn incremental_miner_tracks_a_simulated_stream() {
    let stream = generate_clickstream(&ShopConfig { scale: 0.05, seed: 31, ..Default::default() });
    let db = &stream.db;
    let params = ResolvedParams::new(360, (db.len() / 100).max(2), 1);
    let mut miner = IncrementalMiner::new(params);
    for t in db.transactions() {
        let labels: Vec<&str> = t.items().iter().map(|&i| db.items().label(i)).collect();
        miner.append(t.timestamp(), &labels).unwrap();
    }
    let incremental = miner.mine();
    // Batch-mine the miner's own accumulated database: identical output.
    let batch = MiningSession::builder()
        .resolved(params)
        .build()
        .expect("valid params")
        .mine(miner.db())
        .expect("non-empty db")
        .into_result();
    assert_eq!(incremental.patterns, batch.patterns);
    assert!(!incremental.patterns.is_empty());
}

#[test]
fn relaxed_mining_on_noisy_simulated_data_dominates_strict() {
    let stream = generate_clickstream(&ShopConfig { scale: 0.05, seed: 32, ..Default::default() });
    let noisy = inject_noise(&stream.db, &NoiseConfig::drops(0.15, 9));
    let base = ResolvedParams::new(360, (noisy.len() / 50).max(3), 1);
    let strict = RpGrowth::new(RpParams::new(base.per, base.min_ps, base.min_rec)).mine(&noisy);
    let (relaxed, _) = mine_relaxed(&noisy, &NoiseParams::new(base, 2, base.per * 4));
    // Every strict pattern set is also discovered by the relaxed model
    // (fault budgets only merge runs, never shrink them).
    for p in &strict.patterns {
        assert!(relaxed.iter().any(|r| r.items == p.items), "strict pattern lost under relaxation");
    }
    assert!(relaxed.len() >= strict.patterns.len());
}

#[test]
fn closed_and_maximal_condense_simulated_output() {
    let stream = generate_twitter(&TwitterConfig { scale: 0.04, seed: 33, ..Default::default() });
    let mined =
        RpGrowth::new(RpParams::with_threshold(360, Threshold::pct(2.0), 1)).mine(&stream.db);
    let closed = closed_patterns(&mined.patterns);
    let maximal = maximal_patterns(&mined.patterns);
    assert!(!closed.is_empty());
    assert!(maximal.len() <= closed.len());
    assert!(closed.len() <= mined.patterns.len());
    // Closure is lossless for support queries: every mined pattern has a
    // closed superset with equal support.
    for p in &mined.patterns {
        let covered = closed
            .iter()
            .any(|c| c.support == p.support && p.items.iter().all(|i| c.items.contains(i)));
        assert!(covered, "pattern not covered by its closure");
    }
}

#[test]
fn top_k_is_a_prefix_of_the_full_ranking() {
    let stream = generate_twitter(&TwitterConfig { scale: 0.04, seed: 34, ..Default::default() });
    let params = RpParams::with_threshold(360, Threshold::pct(2.0), 1);
    let all = RpGrowth::new(params.clone()).mine(&stream.db).patterns;
    let k10 = top_k(&all, 10, RankBy::Support);
    let k5 = top_k(&all, 5, RankBy::Support);
    assert_eq!(&k10[..5], &k5[..]);
    assert!(k10.windows(2).all(|w| w[0].support >= w[1].support));
    let direct = mine_top_k(&stream.db, params, 10, RankBy::Support);
    assert_eq!(direct, k10);
}

#[test]
fn rules_are_confidence_sound_on_simulated_data() {
    let stream = generate_clickstream(&ShopConfig { scale: 0.05, seed: 35, ..Default::default() });
    let db = &stream.db;
    let mined = RpGrowth::new(RpParams::with_threshold(360, Threshold::pct(0.3), 1)).mine(db);
    let (rules, skipped) = generate_rules(db, &mined.patterns, 0.7);
    assert_eq!(skipped, 0);
    assert!(!rules.is_empty());
    for r in rules.iter().take(50) {
        // Recompute confidence from scratch.
        let mut z = r.antecedent.clone();
        z.extend(&r.consequent);
        z.sort_unstable();
        let sup_z = db.support(&z);
        let sup_a = db.support(&r.antecedent);
        assert_eq!(sup_z, r.support);
        let conf = sup_z as f64 / sup_a as f64;
        assert!((conf - r.confidence).abs() < 1e-12);
        assert!(conf >= 0.7);
    }
}

#[test]
fn slicing_a_discovered_interval_yields_a_locally_periodic_db() {
    // Take a mined pattern, slice the database to its first interesting
    // interval, and check the pattern is periodic throughout the slice —
    // the definition of a periodic-interval, exercised via the public
    // slicing API.
    let stream = generate_clickstream(&ShopConfig { scale: 0.08, seed: 36, ..Default::default() });
    let db = &stream.db;
    let params = RpParams::with_threshold(360, Threshold::pct(0.3), 2);
    let mined = RpGrowth::new(params.clone()).mine(db);
    let p = mined.patterns.iter().find(|p| p.len() >= 2).expect("a pair exists");
    let iv = p.intervals[0];
    let season = slice_time(db, iv.start..=iv.end);
    let ts = season.timestamps_of(&p.items);
    assert_eq!(ts.len(), iv.periodic_support);
    assert!(ts.windows(2).all(|w| w[1] - w[0] <= 360), "all gaps periodic inside the interval");
}
