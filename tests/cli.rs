//! End-to-end tests of the `rpm` command-line binary: generate → stats →
//! mine → rules, via real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn rpm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rpm")).args(args).output().expect("binary runs")
}

fn temp_db(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rpm_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_prints_usage() {
    let out = rpm(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rpm mine"));
    assert!(text.contains("rpm generate"));
}

#[test]
fn unknown_command_fails_with_guidance() {
    let out = rpm(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("rpm help"));
}

#[test]
fn generate_stats_mine_pipeline() {
    let db = temp_db("pipeline.tsv");
    let db_str = db.to_str().unwrap();

    let out = rpm(&["generate", "shop", "--out", db_str, "--scale", "0.03", "--seed", "4"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(db.exists());

    let out = rpm(&["stats", db_str]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("|TDB|="));

    let out =
        rpm(&["mine", db_str, "--per", "360", "--min-ps", "0.3%", "--min-rec", "1", "--top", "3"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() <= 3);
    assert!(lines.iter().all(|l| l.contains("support=")));
}

#[test]
fn mine_parallel_and_sequential_agree_via_cli() {
    let db = temp_db("parallel.tsv");
    let db_str = db.to_str().unwrap();
    assert!(rpm(&["generate", "twitter", "--out", db_str, "--scale", "0.02"]).status.success());
    let seq = rpm(&["mine", db_str, "--per", "360", "--min-ps", "2%", "--min-rec", "1"]);
    let par = rpm(&[
        "mine",
        db_str,
        "--per",
        "360",
        "--min-ps",
        "2%",
        "--min-rec",
        "1",
        "--threads",
        "4",
    ]);
    assert!(seq.status.success() && par.status.success());
    assert_eq!(seq.stdout, par.stdout);
}

#[test]
fn pf_and_ppattern_commands_run() {
    let db = temp_db("baselines.tsv");
    let db_str = db.to_str().unwrap();
    assert!(rpm(&["generate", "shop", "--out", db_str, "--scale", "0.03"]).status.success());
    let out = rpm(&["pf", db_str, "--max-per", "1440", "--min-sup", "1%"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("per="));
    let out = rpm(&["ppattern", db_str, "--period", "1440", "--min-sup", "2%"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("psup="));
}

#[test]
fn missing_flags_are_reported() {
    let db = temp_db("missing.tsv");
    let db_str = db.to_str().unwrap();
    assert!(rpm(&["generate", "shop", "--out", db_str, "--scale", "0.02"]).status.success());
    let out = rpm(&["mine", db_str]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--per"));
    let out = rpm(&["mine", db_str, "--per", "10", "--min-ps", "nonsense"]);
    assert!(!out.status.success());
}

#[test]
fn binary_format_roundtrips_through_the_cli() {
    let tsv = temp_db("bin_roundtrip.tsv");
    let bin = temp_db("bin_roundtrip.rpmb");
    assert!(rpm(&["generate", "shop", "--out", tsv.to_str().unwrap(), "--scale", "0.02"])
        .status
        .success());
    assert!(rpm(&["generate", "shop", "--out", bin.to_str().unwrap(), "--scale", "0.02"])
        .status
        .success());
    assert!(
        std::fs::metadata(&bin).unwrap().len() < std::fs::metadata(&tsv).unwrap().len(),
        "binary must be smaller"
    );
    // Identical stats and identical mining output from both encodings.
    let s1 = rpm(&["stats", tsv.to_str().unwrap()]);
    let s2 = rpm(&["stats", bin.to_str().unwrap()]);
    assert_eq!(s1.stdout, s2.stdout);
    let args = ["--per", "360", "--min-ps", "1%", "--min-rec", "1"];
    let m1 = rpm(&[&["mine", tsv.to_str().unwrap()], &args[..]].concat());
    let m2 = rpm(&[&["mine", bin.to_str().unwrap()], &args[..]].concat());
    // The text reader re-interns labels in line order, so item ids — and
    // with them both the output order and the label order inside each
    // `{…}` — differ between encodings; the pattern *sets* must match.
    let normalised = |o: &Output| {
        let text = String::from_utf8_lossy(&o.stdout).into_owned();
        let mut lines: Vec<String> = text
            .lines()
            .map(|l| {
                let (items, rest) = l.split_once("} ").expect("pattern line");
                let mut labels: Vec<&str> = items.trim_start_matches('{').split(',').collect();
                labels.sort_unstable();
                format!("{{{}}} {rest}", labels.join(","))
            })
            .collect();
        lines.sort();
        lines
    };
    assert_eq!(normalised(&m1), normalised(&m2));
}

#[test]
fn spectrum_command_reports_steps() {
    let db = temp_db("spectrum.tsv");
    let db_str = db.to_str().unwrap();
    assert!(rpm(&["generate", "shop", "--out", db_str, "--scale", "0.05"]).status.success());
    let out = rpm(&["spectrum", db_str, "--items", "cat-sale cat-checkout", "--min-ps", "0.3%"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("per\truns\trec"));
    // Runs column strictly decreases down the steps.
    let runs: Vec<i64> =
        text.lines().skip(1).map(|l| l.split('\t').nth(1).unwrap().parse().unwrap()).collect();
    assert!(runs.windows(2).all(|w| w[0] > w[1]));
    // Unknown item is a clean error.
    let bad = rpm(&["spectrum", db_str, "--items", "no-such-cat", "--min-ps", "1"]);
    assert!(!bad.status.success());
}

#[test]
fn convert_roundtrips_semantically() {
    let tsv = temp_db("convert_src.tsv");
    let bin = temp_db("convert_mid.rpmb");
    let back = temp_db("convert_back.tsv");
    assert!(rpm(&["generate", "shop", "--out", tsv.to_str().unwrap(), "--scale", "0.02"])
        .status
        .success());
    assert!(rpm(&["convert", tsv.to_str().unwrap(), bin.to_str().unwrap()]).status.success());
    assert!(rpm(&["convert", bin.to_str().unwrap(), back.to_str().unwrap()]).status.success());
    // Per-line item order may differ (id order vs interning order); compare
    // as (ts → item set) maps.
    let norm = |p: &std::path::Path| {
        let mut rows: Vec<(i64, Vec<String>)> = std::fs::read_to_string(p)
            .unwrap()
            .lines()
            .map(|l| {
                let (ts, items) = l.split_once('\t').unwrap();
                let mut v: Vec<String> = items.split_whitespace().map(str::to_owned).collect();
                v.sort();
                (ts.parse().unwrap(), v)
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(norm(&tsv), norm(&back));
    // Missing output path is a clean error.
    let out = rpm(&["convert", tsv.to_str().unwrap()]);
    assert!(!out.status.success());
}

#[test]
fn detect_command_reports_candidate_periods() {
    let db = temp_db("detect.tsv");
    // A hand-made exactly-period-6 stream.
    let mut text = String::new();
    for k in 0..60i64 {
        text.push_str(&format!("{}\tpulse echo\n", k * 6));
    }
    std::fs::write(&db, text).unwrap();
    let db_str = db.to_str().unwrap();
    for method in ["chi", "auto", "consensus"] {
        let out = rpm(&[
            "detect",
            db_str,
            "--items",
            "pulse echo",
            "--max-period",
            "20",
            "--method",
            method,
        ]);
        assert!(out.status.success(), "{method}: {}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        let top: Vec<i64> = text
            .lines()
            .skip(1)
            .take(3)
            .map(|l| l.split('\t').next().unwrap().parse().unwrap())
            .collect();
        // The fundamental must rank highly; autocorrelation also surfaces
        // harmonics, so accept any ordering of multiples of 6.
        assert!(top.contains(&6), "{method} top periods: {top:?}");
        assert!(top.iter().all(|p| p % 6 == 0), "{method} reported a non-harmonic: {top:?}");
    }
    let bad = rpm(&["detect", db_str, "--items", "pulse", "--method", "fourier"]);
    assert!(!bad.status.success());
}

#[test]
fn json_and_tsv_formats() {
    let db = temp_db("formats.tsv");
    let db_str = db.to_str().unwrap();
    assert!(rpm(&["generate", "shop", "--out", db_str, "--scale", "0.03"]).status.success());
    let base = ["mine", db_str, "--per", "360", "--min-ps", "1%", "--min-rec", "1"];
    let json = rpm(&[&base[..], &["--format", "json"]].concat());
    assert!(json.status.success());
    let text = String::from_utf8_lossy(&json.stdout);
    assert!(text.lines().all(|l| l.starts_with('{') && l.contains("\"support\":")));
    let tsv = rpm(&[&base[..], &["--format", "tsv"]].concat());
    let text = String::from_utf8_lossy(&tsv.stdout);
    assert!(text.starts_with("items\tsupport"));
    assert_eq!(
        text.lines().count() - 1,
        String::from_utf8_lossy(&json.stdout).lines().count(),
        "same pattern count across formats"
    );
    let bad = rpm(&[&base[..], &["--format", "xml"]].concat());
    assert!(!bad.status.success());
}

#[test]
fn relaxed_mining_via_cli() {
    let db = temp_db("relaxed.tsv");
    let db_str = db.to_str().unwrap();
    assert!(rpm(&["generate", "shop", "--out", db_str, "--scale", "0.03"]).status.success());
    let strict = rpm(&["mine", db_str, "--per", "60", "--min-ps", "30", "--min-rec", "1"]);
    let relaxed =
        rpm(&["mine", db_str, "--per", "60", "--min-ps", "30", "--min-rec", "1", "--relaxed", "3"]);
    assert!(strict.status.success() && relaxed.status.success());
    let count = |o: &Output| String::from_utf8_lossy(&o.stdout).lines().count();
    assert!(count(&relaxed) >= count(&strict), "fault budget can only add patterns");
}

#[test]
fn timeout_flag_accepts_hours_and_rejects_overflow() {
    let db = temp_db("timeout.tsv");
    let db_str = db.to_str().unwrap();
    let out = rpm(&["generate", "shop", "--out", db_str, "--scale", "0.02", "--seed", "9"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // An hour-denominated deadline parses and (being generous) completes.
    let out = rpm(&[
        "mine",
        db_str,
        "--per",
        "360",
        "--min-ps",
        "0.5%",
        "--min-rec",
        "1",
        "--timeout",
        "1h",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Overflowing durations are rejected up front, not wrapped or saturated.
    for bad in ["1e300h", "-5s", "99999999999999999999h"] {
        let out = rpm(&[
            "mine",
            db_str,
            "--per",
            "360",
            "--min-ps",
            "0.5%",
            "--min-rec",
            "1",
            "--timeout",
            bad,
        ]);
        assert!(!out.status.success(), "--timeout {bad} accepted");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("invalid parameters"), "--timeout {bad}: {err}");
    }
}

#[test]
fn serve_rejects_a_bad_load_spec_and_bad_addr() {
    let out = rpm(&["serve", "--addr", "127.0.0.1:0", "--load", "missing-equals-sign"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("expected NAME=PATH"), "{err}");

    let out = rpm(&["serve", "--addr", "not-an-address"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot bind"));
}
