//! Property-based oracles for the baseline miners: each optimised
//! implementation is compared against a from-scratch brute-force
//! recomputation of its own model on random databases.

use proptest::prelude::*;
use recurring_patterns::baselines::periodic_frequent::periodicity;
use recurring_patterns::baselines::{
    mine_hitset, mine_periodic_first, mine_segments, PPatternParams, PfGrowth, PfParams,
    SegmentParams,
};
use recurring_patterns::prelude::*;

/// Batch miner routed through the engine's [`MiningSession`] entry point.
fn mine_resolved(db: &TransactionDb, params: ResolvedParams) -> MiningResult {
    let session = MiningSession::builder().resolved(params).build().expect("valid params");
    session.mine(db).expect("non-empty db").into_result()
}

/// Strategy: a small random database over ≤ 6 items and ≤ 60 timestamps.
fn small_db() -> impl Strategy<Value = TransactionDb> {
    proptest::collection::vec((0i64..60, proptest::collection::btree_set(0u8..6, 1..4)), 2..40)
        .prop_map(|rows| {
            let mut b = TransactionDb::builder();
            for i in 0..6u8 {
                b.items_mut().intern(&format!("i{i}"));
            }
            for (ts, items) in rows {
                let labels: Vec<String> = items.iter().map(|i| format!("i{i}")).collect();
                let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                b.add_labeled(ts, &refs);
            }
            b.build()
        })
}

/// Brute-force periodic-frequent oracle: enumerate all itemsets over the
/// (tiny) alphabet and apply the definition directly.
fn pf_brute_force(
    db: &TransactionDb,
    max_per: i64,
    min_sup: usize,
) -> Vec<(Vec<ItemId>, usize, i64)> {
    let Some((start, end)) = db.time_span() else { return Vec::new() };
    let n = db.item_count();
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let items: Vec<ItemId> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(|i| ItemId(i as u32)).collect();
        let ts = db.timestamps_of(&items);
        if ts.len() < min_sup {
            continue;
        }
        if let Some(per) = periodicity(&ts, start, end) {
            if per <= max_per {
                out.push((items, ts.len(), per));
            }
        }
    }
    out.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Brute-force p-pattern oracle (w = 1).
fn ppattern_brute_force(
    db: &TransactionDb,
    period: i64,
    min_sup: usize,
) -> Vec<(Vec<ItemId>, usize)> {
    let n = db.item_count();
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let items: Vec<ItemId> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(|i| ItemId(i as u32)).collect();
        let ts = db.timestamps_of(&items);
        let psup = ts.windows(2).filter(|w| w[1] - w[0] <= period).count();
        if psup >= min_sup {
            out.push((items, psup));
        }
    }
    out.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PF-growth (both variants) equals the brute-force definition.
    #[test]
    fn pf_growth_matches_brute_force(
        db in small_db(),
        max_per in 1i64..20,
        min_sup in 1usize..6,
    ) {
        let (mined, _) =
            PfGrowth::new(PfParams::new(max_per, Threshold::Count(min_sup))).mine(&db);
        let oracle = pf_brute_force(&db, max_per, min_sup);
        prop_assert_eq!(mined.len(), oracle.len());
        for (m, (items, sup, per)) in mined.iter().zip(&oracle) {
            prop_assert_eq!(&m.items, items);
            prop_assert_eq!(m.support, *sup);
            prop_assert_eq!(m.periodicity, *per);
        }
    }

    /// Periodic-first p-pattern mining equals the brute-force definition.
    #[test]
    fn ppattern_matches_brute_force(
        db in small_db(),
        period in 1i64..20,
        min_sup in 1usize..6,
    ) {
        let params = PPatternParams::new(period, Threshold::Count(min_sup), 1);
        let (mined, _) = mine_periodic_first(&db, &params, None);
        let oracle = ppattern_brute_force(&db, period, min_sup);
        prop_assert_eq!(mined.len(), oracle.len());
        for (m, (items, psup)) in mined.iter().zip(&oracle) {
            prop_assert_eq!(&m.items, items);
            prop_assert_eq!(m.periodic_support, *psup);
        }
    }

    /// The hit-set algorithm equals the level-wise segment miner.
    #[test]
    fn hitset_matches_apriori(db in small_db(), period in 1i64..12, pct in 1u32..10) {
        let params = SegmentParams::new(period, Threshold::Fraction(pct as f64 / 10.0));
        prop_assert_eq!(mine_hitset(&db, &params), mine_segments(&db, &params));
    }

    /// Relaxed mining with zero budget is exactly strict mining, on
    /// arbitrary databases and parameters.
    #[test]
    fn relaxed_zero_budget_is_strict(
        db in small_db(),
        per in 1i64..10,
        min_ps in 1usize..4,
        min_rec in 1usize..3,
    ) {
        let base = ResolvedParams::new(per, min_ps, min_rec);
        let strict = mine_resolved(&db, base).patterns;
        let (relaxed, _) = mine_relaxed(&db, &NoiseParams::strict(base));
        prop_assert_eq!(strict, relaxed);
    }

    /// Parallel mining equals sequential mining for any thread count.
    #[test]
    fn parallel_equals_sequential(
        db in small_db(),
        per in 1i64..8,
        min_ps in 1usize..4,
        threads in 1usize..6,
    ) {
        let params = ResolvedParams::new(per, min_ps, 1);
        let seq = mine_resolved(&db, params).patterns;
        let par = recurring_patterns::core::mine_parallel(&db, params, threads).patterns;
        prop_assert_eq!(seq, par);
    }

    /// The incremental miner equals batch mining when fed the same stream.
    #[test]
    fn incremental_equals_batch(db in small_db(), per in 1i64..8, min_ps in 1usize..4) {
        let params = ResolvedParams::new(per, min_ps, 1);
        let mut miner = IncrementalMiner::with_items(db.items().clone(), params);
        for t in db.transactions() {
            miner.append_ids(t.timestamp(), t.items().to_vec()).unwrap();
        }
        let inc = miner.mine().patterns;
        let batch = mine_resolved(&db, params).patterns;
        prop_assert_eq!(inc, batch);
    }
}
