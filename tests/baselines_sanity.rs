//! Cross-model relationships between the paper's model and its baselines —
//! the structural claims behind §5.4 / Table 8, checked on simulated data.

use recurring_patterns::baselines::{
    mine_association_first, mine_periodic_first, PPatternParams, PfGrowth, PfParams,
};
use recurring_patterns::prelude::*;

fn shop() -> TransactionDb {
    generate_clickstream(&ShopConfig { scale: 0.08, seed: 21, ..Default::default() }).db
}

#[test]
fn periodic_frequent_patterns_are_recurring_patterns() {
    // A periodic-frequent pattern exhibits complete cyclic behaviour, so at
    // minPS = minSup, per = maxPer, minRec = 1 it must also be recurring —
    // the paper's "recurring patterns generalise periodic-frequent ones".
    let db = shop();
    let min_sup = (db.len() / 100).max(2);
    let (pf, _) = PfGrowth::new(PfParams::new(1440, Threshold::Count(min_sup))).mine(&db);
    assert!(!pf.is_empty(), "need PF patterns for the inclusion to be meaningful");
    let rp = RpGrowth::new(RpParams::new(1440, min_sup, 1)).mine(&db);
    for p in &pf {
        assert!(
            rp.patterns.iter().any(|r| r.items == p.items),
            "PF pattern {} missing from recurring output",
            db.items().pattern_string(&p.items)
        );
    }
    // And strictly more recurring patterns exist (window-bounded ones).
    assert!(rp.patterns.len() > pf.len());
}

#[test]
fn recurring_patterns_are_p_patterns_at_matched_thresholds() {
    // Every interesting interval contributes ≥ minPS−1 periodic gaps, so a
    // recurring pattern with minRec intervals has pSup ≥ minRec·(minPS−1);
    // with minSup set to that, Ma–Hellerstein's model must contain ours —
    // over-generating heavily besides (the paper's criticism).
    let db = shop();
    let min_ps = (db.len() / 200).max(3);
    let min_rec = 2;
    let rp = RpGrowth::new(RpParams::new(720, min_ps, min_rec)).mine(&db);
    assert!(!rp.patterns.is_empty());
    let min_sup = min_rec * (min_ps - 1);
    let (pp, _) =
        mine_periodic_first(&db, &PPatternParams::new(720, Threshold::Count(min_sup), 1), None);
    for r in &rp.patterns {
        assert!(
            pp.iter().any(|p| p.items == r.items),
            "recurring pattern {} missing from p-pattern output",
            db.items().pattern_string(&r.items)
        );
    }
    assert!(
        pp.len() > rp.patterns.len(),
        "p-patterns should over-generate: {} vs {}",
        pp.len(),
        rp.patterns.len()
    );
}

#[test]
fn p_pattern_strategies_agree_on_simulated_data() {
    let db = shop();
    let params = PPatternParams::new(1440, Threshold::pct(1.0), 1);
    let (a, _) = mine_periodic_first(&db, &params, None);
    let (b, _) = mine_association_first(&db, &params, None);
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn table8_ordering_holds_on_both_simulated_datasets() {
    // #PF < #recurring < #p-patterns at the Table 8 parameter mapping.
    // minPS follows the paper's per-dataset grids: 0.1% (Shop-14), 2% (Twitter).
    for (name, db, min_ps_pct) in [
        ("shop", shop(), 0.1),
        (
            "twitter",
            generate_twitter(&TwitterConfig { scale: 0.05, seed: 21, ..Default::default() }).db,
            2.0,
        ),
    ] {
        let (pf, _) = PfGrowth::new(PfParams::new(1440, Threshold::pct(0.2))).mine(&db);
        let rp =
            RpGrowth::new(RpParams::with_threshold(1440, Threshold::pct(min_ps_pct), 1)).mine(&db);
        // minSup = minPS − 1 periodic appearances: every recurring pattern
        // (one run of ≥ minPS stamps ⇒ ≥ minPS−1 periodic gaps) is then a
        // p-pattern, so the count ordering is structural, not incidental.
        let min_ps_abs = Threshold::pct(min_ps_pct).resolve(db.len());
        let pp_min_sup = Threshold::Count(min_ps_abs.saturating_sub(1).max(1));
        let (pp, _) =
            mine_periodic_first(&db, &PPatternParams::new(1440, pp_min_sup, 1), Some(200_000));
        assert!(
            pf.len() < rp.patterns.len(),
            "{name}: PF ({}) should be rarer than recurring ({})",
            pf.len(),
            rp.patterns.len()
        );
        assert!(
            rp.patterns.len() < pp.len(),
            "{name}: recurring ({}) should be rarer than p-patterns ({})",
            rp.patterns.len(),
            pp.len()
        );
    }
}
