//! Cross-algorithm equivalence on randomized databases: RP-growth, the
//! Erec-pruned level-wise search, the support-only level-wise search and
//! exhaustive enumeration must produce identical outputs for identical
//! parameters — the strongest available evidence that the tree machinery
//! (ts-list push-up, conditional pruning) is sound.

use recurring_patterns::core::{apriori_rp, apriori_support_only, brute_force};
use recurring_patterns::prelude::*;
use recurring_patterns::timeseries::Pcg32;

/// Batch miner routed through the engine's [`MiningSession`] entry point.
fn mine_resolved(db: &TransactionDb, params: ResolvedParams) -> MiningResult {
    let session = MiningSession::builder().resolved(params).build().expect("valid params");
    session.mine(db).expect("non-empty db").into_result()
}

/// Builds a random database over `n_items` items across `span` timestamps,
/// where item `i` appears at a timestamp with its own probability — heavier
/// items are denser, mimicking a popularity skew.
fn random_db(seed: u64, n_items: usize, span: i64, density: f64) -> TransactionDb {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut b = TransactionDb::builder();
    let labels: Vec<String> = (0..n_items).map(|i| format!("x{i}")).collect();
    for ts in 0..span {
        let mut items: Vec<&str> = Vec::new();
        for (i, label) in labels.iter().enumerate() {
            let p = density / (i + 1) as f64;
            if rng.random_f64() < p {
                items.push(label);
            }
        }
        if !items.is_empty() {
            b.add_labeled(ts, &items);
        }
    }
    b.build()
}

#[test]
fn growth_matches_brute_force_across_seeds_and_parameters() {
    for seed in 0..8 {
        let db = random_db(seed, 8, 120, 0.7);
        for (per, min_ps, min_rec) in
            [(1, 2, 1), (2, 3, 2), (3, 2, 2), (5, 4, 1), (2, 2, 3), (10, 3, 1)]
        {
            let params = ResolvedParams::new(per, min_ps, min_rec);
            let growth = mine_resolved(&db, params).patterns;
            let brute = brute_force(&db, params);
            assert_eq!(
                growth, brute,
                "divergence at seed={seed} per={per} minPS={min_ps} minRec={min_rec}"
            );
        }
    }
}

#[test]
fn all_four_miners_agree_on_denser_databases() {
    for seed in 100..104 {
        let db = random_db(seed, 10, 200, 1.2);
        let params = ResolvedParams::new(3, 3, 2);
        let growth = mine_resolved(&db, params).patterns;
        let (erec, erec_stats) = apriori_rp(&db, params);
        let (weak, weak_stats) = apriori_support_only(&db, params);
        let brute = brute_force(&db, params);
        assert_eq!(growth, erec, "growth vs apriori at seed={seed}");
        assert_eq!(growth, weak, "growth vs support-only at seed={seed}");
        assert_eq!(growth, brute, "growth vs brute force at seed={seed}");
        assert!(
            erec_stats.total_candidates() <= weak_stats.total_candidates(),
            "Erec pruning explored more candidates than the weak bound at seed={seed}"
        );
    }
}

#[test]
fn generic_miner_dispatch_agrees_with_native_apis() {
    // Every algorithm — RP-growth and the three baselines — behind one
    // `Box<dyn Miner>`, the dispatch the bench harness (table8) relies on.
    let db = random_db(42, 8, 150, 0.9);
    let miners: Vec<Box<dyn Miner>> = vec![
        Box::new(RpGrowth::new(RpParams::new(3, 3, 2))),
        Box::new(PfGrowth::new(PfParams::new(3, Threshold::Count(3)))),
        Box::new(PPatternMiner::new(PPatternParams::new(3, Threshold::Count(3), 1), Some(100_000))),
        Box::new(SegmentMiner::new(SegmentParams::new(4, Threshold::Count(2)))),
    ];
    let control = RunControl::new();
    for miner in &miners {
        let run = miner.mine_under(&db, &control).expect("mining must succeed");
        assert!(run.aborted.is_none(), "{} aborted under unlimited control", miner.name());
        for p in &run.patterns {
            assert!(!p.is_empty() && p.support > 0, "{} emitted a junk pattern", miner.name());
        }
    }

    // The RP-growth projection must be the native output, itemset for
    // itemset.
    let run = miners[0].mine_under(&db, &control).unwrap();
    let native = mine_resolved(&db, RpParams::new(3, 3, 2).resolve(db.len()));
    assert_eq!(run.patterns.len(), native.patterns.len());
    for (mined, native) in run.patterns.iter().zip(&native.patterns) {
        assert_eq!(mined.items, native.items);
        assert_eq!(mined.support, native.support);
    }
}

#[test]
fn outputs_verify_against_raw_database() {
    for seed in 200..204 {
        let db = random_db(seed, 9, 150, 0.9);
        let params = ResolvedParams::new(2, 2, 2);
        let result = mine_resolved(&db, params);
        verify_all(&db, &result.patterns, params)
            .unwrap_or_else(|(i, e)| panic!("pattern {i} failed verification: {e}"));
    }
}

#[test]
fn sparse_and_degenerate_databases() {
    // A database where every item occurs exactly once.
    let mut b = TransactionDb::builder();
    for ts in 0..5 {
        b.add_labeled(ts * 100, &[&format!("only{ts}") as &str]);
    }
    let db = b.build();
    let params = ResolvedParams::new(1, 1, 1);
    let growth = mine_resolved(&db, params).patterns;
    let brute = brute_force(&db, params);
    assert_eq!(growth, brute);
    assert_eq!(growth.len(), 5, "each singleton is its own trivial interval");

    // One fully repeated transaction.
    let mut b = TransactionDb::builder();
    for ts in 0..10 {
        b.add_labeled(ts, &["p", "q", "r"]);
    }
    let db = b.build();
    let params = ResolvedParams::new(1, 10, 1);
    let growth = mine_resolved(&db, params).patterns;
    assert_eq!(growth.len(), 7, "all 2^3-1 subsets recur");
    assert_eq!(growth, brute_force(&db, params));
}
