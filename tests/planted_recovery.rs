//! Planted-ground-truth recovery on the simulated evaluation datasets —
//! the quantitative form of the paper's Table 6 usefulness claim.

use recurring_patterns::prelude::*;

#[test]
fn twitter_events_recovered_at_paper_parameters() {
    let stream = generate_twitter(&TwitterConfig { scale: 0.08, seed: 3, ..Default::default() });
    let db = &stream.db;
    // Paper Table 6 parameters: per=360, minPS=2%, minRec=1.
    let result = RpGrowth::new(RpParams::with_threshold(360, Threshold::pct(2.0), 1)).mine(db);
    let report = evaluate_recovery(db, &stream.planted, &result.patterns);
    assert_eq!(report.pattern_recall(), 1.0, "{report:#?}");
    assert_eq!(report.window_recall(), 1.0, "{report:#?}");
    for r in &report.per_pattern {
        assert!(r.mean_iou > 0.9, "{}: interval endpoints drifted (IoU {})", r.name, r.mean_iou);
    }
}

#[test]
fn nuclear_event_survives_min_rec_two_single_window_events_do_not() {
    let stream = generate_twitter(&TwitterConfig { scale: 0.08, seed: 5, ..Default::default() });
    let db = &stream.db;
    let result = RpGrowth::new(RpParams::with_threshold(360, Threshold::pct(2.0), 2)).mine(db);
    let find = |labels: &[&str]| {
        let mut ids = db.pattern_ids(labels).unwrap();
        ids.sort_unstable();
        result.patterns.iter().any(|p| p.items == ids)
    };
    assert!(find(&["#nuclear", "#hibaku"]), "two-window event survives minRec=2");
    assert!(!find(&["#pakvotes", "#nayapakistan"]), "one-window event must drop at minRec=2");
    assert!(!find(&["#yyc", "#uttarakhand"]), "one-window event must drop at minRec=2");
}

#[test]
fn shop_campaign_recovered_and_flash_sale_requires_min_rec_one() {
    let stream = generate_clickstream(&ShopConfig { scale: 0.15, seed: 11, ..Default::default() });
    let db = &stream.db;
    let at = |min_rec: usize| {
        RpGrowth::new(RpParams::with_threshold(360, Threshold::pct(0.3), min_rec)).mine(db)
    };
    let two = at(2);
    let report = evaluate_recovery(db, &stream.planted[..1], &two.patterns);
    assert!(report.per_pattern[0].fully_recovered(), "{report:#?}");

    let flash = {
        let mut v = db.pattern_ids(&["cat-flash", "cat-landing"]).unwrap();
        v.sort_unstable();
        v
    };
    assert!(!two.patterns.iter().any(|p| p.items == flash));
    let one = at(1);
    assert!(one.patterns.iter().any(|p| p.items == flash));
}

#[test]
fn recovery_is_stable_across_seeds() {
    for seed in [1u64, 2, 3] {
        let stream = generate_twitter(&TwitterConfig { scale: 0.06, seed, ..Default::default() });
        let result =
            RpGrowth::new(RpParams::with_threshold(360, Threshold::pct(2.0), 1)).mine(&stream.db);
        let report = evaluate_recovery(&stream.db, &stream.planted, &result.patterns);
        assert_eq!(report.pattern_recall(), 1.0, "seed {seed}: {report:#?}");
    }
}

#[test]
fn mined_output_verifies_on_simulated_data() {
    let stream = generate_clickstream(&ShopConfig { scale: 0.08, seed: 2, ..Default::default() });
    let params = RpParams::with_threshold(720, Threshold::pct(0.2), 1);
    let resolved = params.resolve(stream.db.len());
    let result = RpGrowth::new(params).mine(&stream.db);
    assert!(!result.patterns.is_empty());
    verify_all(&stream.db, &result.patterns, resolved)
        .unwrap_or_else(|(i, e)| panic!("pattern {i} failed: {e}"));
}
