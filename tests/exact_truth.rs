//! Exact whole-output validation: on spec-built databases the complete
//! recurring-pattern set is known in closed form, and every miner in the
//! workspace must produce it verbatim — supports, recurrences and interval
//! endpoints included.

use proptest::prelude::*;
use recurring_patterns::core::{apriori_rp, mine_parallel};
use recurring_patterns::datagen::{ExactGroup, ExactSpec};
use recurring_patterns::prelude::*;

/// Batch miner routed through the engine's [`MiningSession`] entry point.
fn mine_resolved(db: &TransactionDb, params: ResolvedParams) -> MiningResult {
    let session = MiningSession::builder().resolved(params).build().expect("valid params");
    session.mine(db).expect("non-empty db").into_result()
}

fn paper_like_spec() -> ExactSpec {
    ExactSpec {
        groups: vec![
            ExactGroup { items: 2, bursts: vec![(3, 8), (3, 8)] }, // two seasons
            ExactGroup { items: 3, bursts: vec![(5, 4), (5, 4), (5, 4)] }, // three seasons
            ExactGroup { items: 1, bursts: vec![(1, 20)] },        // one long season
            ExactGroup { items: 2, bursts: vec![(9, 3)] },         // sparse, per-sensitive
        ],
    }
}

#[test]
fn rp_growth_reproduces_the_closed_form_exactly() {
    let spec = paper_like_spec();
    let db = spec.build();
    for (per, min_ps, min_rec) in
        [(3, 4, 2), (5, 3, 2), (5, 4, 3), (1, 10, 1), (9, 3, 1), (8, 2, 1), (3, 8, 2)]
    {
        let params = ResolvedParams::new(per, min_ps, min_rec);
        let expected = spec.expected(&db, params);
        let mined = mine_resolved(&db, params).patterns;
        assert_eq!(
            mined, expected,
            "full-output mismatch at per={per} minPS={min_ps} minRec={min_rec}"
        );
    }
}

#[test]
fn all_miners_reproduce_the_closed_form() {
    let spec = paper_like_spec();
    let db = spec.build();
    let params = ResolvedParams::new(5, 3, 2);
    let expected = spec.expected(&db, params);
    assert!(!expected.is_empty());
    assert_eq!(mine_resolved(&db, params).patterns, expected);
    assert_eq!(apriori_rp(&db, params).0, expected);
    assert_eq!(mine_parallel(&db, params, 4).patterns, expected);
    let (relaxed, _) = mine_relaxed(&db, &NoiseParams::strict(params));
    assert_eq!(relaxed, expected);
}

#[test]
fn interval_endpoints_are_exact() {
    // Group 0: bursts of 8 at step 3 ⇒ first interval [0, 21], second
    // starts 10_000 later at 21 + 10_000.
    let spec = paper_like_spec();
    let db = spec.build();
    let params = ResolvedParams::new(3, 8, 2);
    let mined = mine_resolved(&db, params).patterns;
    let pair = {
        let mut v = db.pattern_ids(&["g0-i0", "g0-i1"]).unwrap();
        v.sort_unstable();
        v
    };
    let p = mined.iter().find(|p| p.items == pair).expect("pair mined");
    assert_eq!(p.intervals.len(), 2);
    assert_eq!((p.intervals[0].start, p.intervals[0].end), (0, 21));
    assert_eq!(p.intervals[0].periodic_support, 8);
    assert_eq!(p.intervals[1].start, 21 + recurring_patterns::datagen::exact::BURST_GAP);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random specs: the closed form and RP-growth agree for arbitrary
    /// group structures and parameters.
    #[test]
    fn random_specs_mine_exactly(
        groups in proptest::collection::vec(
            (1usize..4, proptest::collection::vec((1i64..10, 1usize..8), 1..4)),
            1..4,
        ),
        per in 1i64..12,
        min_ps in 1usize..6,
        min_rec in 1usize..4,
    ) {
        let spec = ExactSpec {
            groups: groups
                .into_iter()
                .map(|(items, bursts)| ExactGroup { items, bursts })
                .collect(),
        };
        let db = spec.build();
        let params = ResolvedParams::new(per, min_ps, min_rec);
        let expected = spec.expected(&db, params);
        let mined = mine_resolved(&db, params).patterns;
        prop_assert_eq!(mined, expected);
    }
}
