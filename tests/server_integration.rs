//! End-to-end tests of the HTTP serving layer, driven over loopback with
//! plain [`TcpStream`]s — no HTTP client library, by design: the server
//! speaks such a small HTTP/1.1 subset that a handful of raw requests
//! exercises it completely.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use recurring_patterns::server::{Server, ServerConfig, ServerHandle};

/// A parsed response; `complete` asserts the body matched `Content-Length`,
/// i.e. the server never dropped a connection mid-write.
struct Http {
    status: u16,
    headers: HashMap<String, String>,
    body: String,
}

impl Http {
    fn header(&self, name: &str) -> &str {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str).unwrap_or("")
    }

    fn counter(&self, name: &str) -> u64 {
        // Extracts `"name": N` from the /metrics JSON.
        let needle = format!("\"{name}\": ");
        let at = self.body.find(&needle).unwrap_or_else(|| panic!("no counter {name}"));
        self.body[at + needle.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .expect("counter value")
    }
}

fn parse_response(raw: &str) -> Http {
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body separator");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let declared: usize =
        headers.get("content-length").expect("Content-Length").parse().expect("numeric length");
    assert_eq!(body.len(), declared, "body truncated mid-write: {status_line}");
    Http { status, headers, body: body.to_string() }
}

fn send_raw(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("receive");
    out
}

fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> Http {
    let raw = format!("{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    parse_response(&send_raw(addr, &raw))
}

fn bind(threads: usize, queue_depth: usize) -> ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        queue_depth,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// The paper's Table 1 running example in the text upload format.
fn running_example_text() -> String {
    let db = recurring_patterns::timeseries::running_example_db();
    let mut out = Vec::new();
    recurring_patterns::timeseries::io::write_timestamped(&db, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

/// A dense database: `items` items all co-occurring at `len` consecutive
/// timestamps, so every of the `2^items - 1` candidate itemsets is a
/// recurring pattern — the candidate space explodes while each check stays
/// cheap, which is exactly what deadline and shutdown tests need.
fn dense_db_text(items: usize, len: usize) -> String {
    let row: Vec<String> = (0..items).map(|i| format!("i{i}")).collect();
    let row = row.join(" ");
    (0..len).map(|t| format!("{t}\t{row}\n")).collect()
}

#[test]
fn mine_caches_and_append_invalidates() {
    let handle = bind(2, 16);
    let addr = handle.addr();

    // Upload with hot params matching the query params below, so the first
    // mine exercises the incremental fast path.
    let up = request(
        addr,
        "POST",
        "/v1/datasets/shop?per=2&min-ps=3&min-rec=2",
        &running_example_text(),
    );
    assert_eq!(up.status, 201, "{}", up.body);
    assert!(up.body.contains("\"transactions\":12"), "{}", up.body);

    // First mine: a miss that runs the engine; the running example yields
    // the paper's 8 patterns.
    let mine = request(addr, "POST", "/v1/datasets/shop/mine?per=2&min-ps=3&min-rec=2", "");
    assert_eq!(mine.status, 200, "{}", mine.body);
    assert_eq!(mine.header("x-rpm-cache"), "miss");
    assert_eq!(mine.header("x-rpm-patterns"), "8");
    assert_eq!(mine.body.lines().count(), 8);

    // Second mine: a cache hit — byte-identical body, and the /metrics
    // counters prove no second engine run happened.
    let again = request(addr, "POST", "/v1/datasets/shop/mine?per=2&min-ps=3&min-rec=2", "");
    assert_eq!(again.status, 200);
    assert_eq!(again.header("x-rpm-cache"), "hit");
    assert_eq!(again.body, mine.body, "hit serves the first run's bytes");
    let metrics = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.counter("hits"), 1, "{}", metrics.body);
    assert_eq!(metrics.counter("runs"), 1, "one engine run despite two requests");
    assert!(metrics.counter("fastpath") >= 1, "hot params used the incremental scanners");

    // Appending a batch of ubiquitous `a b` transactions that is itself
    // half the stream pushes the dirty tail past the cost-model budget, so
    // the patch path refuses and the old content is invalidated: the same
    // query must re-mine.
    let batch = "16\ta b\n17\ta b\n18\ta b\n19\ta b\n20\ta b\n21\ta b\n";
    let append = request(addr, "POST", "/v1/datasets/shop/append", batch);
    assert_eq!(append.status, 200, "{}", append.body);
    assert!(append.body.contains("\"appended\":6"), "{}", append.body);
    assert!(append.body.contains("\"patched\":false"), "{}", append.body);
    let after = request(addr, "POST", "/v1/datasets/shop/mine?per=2&min-ps=3&min-rec=2", "");
    assert_eq!(after.status, 200);
    assert_eq!(after.header("x-rpm-cache"), "miss", "append invalidated the entry");
    let metrics = request(addr, "GET", "/v1/metrics", "");
    assert!(metrics.counter("invalidations") >= 1, "{}", metrics.body);
    assert_eq!(metrics.counter("appends_patched"), 0, "{}", metrics.body);
    assert_eq!(metrics.counter("runs"), 2);

    // Time regressions are a conflict, and the dataset stays queryable.
    let bad = request(addr, "POST", "/v1/datasets/shop/append", "1\tbread\n");
    assert_eq!(bad.status, 409, "{}", bad.body);
    let still = request(addr, "GET", "/v1/datasets", "");
    assert!(still.body.contains("\"name\":\"shop\""), "{}", still.body);

    handle.shutdown();
    handle.join();
}

#[test]
fn append_patches_cache_in_place_and_active_sees_new_patterns() {
    let handle = bind(2, 16);
    let addr = handle.addr();

    // The running example plus a sparse `pad` tail (isolated occurrences,
    // never periodic, never a candidate) so the multi-transaction batch
    // below stays under the delta cost-model budget.
    let mut text = running_example_text();
    for ts in [20, 26, 32, 38, 44, 50, 56, 62] {
        text.push_str(&format!("{ts}\tpad\n"));
    }
    let up = request(addr, "POST", "/v1/datasets/shop?per=2&min-ps=3&min-rec=2", &text);
    assert_eq!(up.status, 201, "{}", up.body);

    // One engine run warms the cache and the dataset's pattern store.
    let mine = request(addr, "POST", "/v1/datasets/shop/mine?per=2&min-ps=3&min-rec=2", "");
    assert_eq!(mine.status, 200, "{}", mine.body);
    assert_eq!(mine.header("x-rpm-cache"), "miss");
    assert_eq!(mine.header("x-rpm-patterns"), "8");

    // Nothing is active past the running example's end (ts=14).
    let before =
        request(addr, "GET", "/v1/datasets/shop/active?per=2&min-ps=3&min-rec=2&at=17", "");
    assert_eq!(before.status, 200, "{}", before.body);
    assert_eq!(before.header("x-rpm-active"), "0");

    // A multi-transaction batch of a brand-new item `z` forming two
    // interesting runs, journalled as one WAL record. Its dirty tail is
    // just its own six transactions — under the cost-model budget — so the
    // append delta-mines and patches the cache entry in place instead of
    // invalidating it.
    let lines = "70\tz\n71\tz\n72\tz\n76\tz\n77\tz\n78\tz\n";
    let append = request(addr, "POST", "/v1/datasets/shop/append", lines);
    assert_eq!(append.status, 200, "{}", append.body);
    assert!(append.body.contains("\"appended\":6"), "{}", append.body);
    assert!(append.body.contains("\"patched\":true"), "{}", append.body);

    // The very next mine is a cache HIT on the patched entry, already
    // carrying the ninth pattern {z} — no engine run in between.
    let after = request(addr, "POST", "/v1/datasets/shop/mine?per=2&min-ps=3&min-rec=2", "");
    assert_eq!(after.status, 200);
    assert_eq!(after.header("x-rpm-cache"), "hit", "append patched, not invalidated");
    assert_eq!(after.header("x-rpm-patterns"), "9");
    assert!(after.body.contains('z'), "patched body carries the new pattern: {}", after.body);

    // The stabbing index rebuilt from the patched entry sees {z} active in
    // its first run [70,72].
    let active =
        request(addr, "GET", "/v1/datasets/shop/active?per=2&min-ps=3&min-rec=2&at=71", "");
    assert_eq!(active.status, 200, "{}", active.body);
    assert_eq!(active.header("x-rpm-cache"), "hit");
    let n_active: usize = active.header("x-rpm-active").parse().unwrap();
    assert!(n_active >= 1, "z is active at ts=71: {}", active.body);

    // Counters tell the same story: one engine run total, one patched
    // append, at least one delta mine that retained the 8 old patterns.
    let metrics = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(metrics.counter("runs"), 1, "{}", metrics.body);
    assert_eq!(metrics.counter("appends_patched"), 1, "{}", metrics.body);
    assert!(metrics.counter("patches") >= 1, "{}", metrics.body);
    assert!(metrics.counter("delta") >= 1, "{}", metrics.body);
    assert!(metrics.counter("delta_retained") >= 8, "{}", metrics.body);

    handle.shutdown();
    handle.join();
}

#[test]
fn active_queries_are_served_from_the_cached_index() {
    let handle = bind(2, 16);
    let addr = handle.addr();
    let up = request(addr, "POST", "/v1/datasets/shop", &running_example_text());
    assert_eq!(up.status, 201, "{}", up.body);

    // A cold active query mines to completion, then stabs the index.
    let active = request(addr, "GET", "/v1/datasets/shop/active?per=2&min-ps=3&min-rec=2&at=3", "");
    assert_eq!(active.status, 200, "{}", active.body);
    assert_eq!(active.header("x-rpm-cache"), "miss");
    let n_at_3: usize = active.header("x-rpm-active").parse().unwrap();
    assert!(n_at_3 > 0, "patterns are active at ts=3: {}", active.body);

    // The same params hit the entry the first query populated; a mine on
    // the same key also hits it.
    let warm = request(addr, "GET", "/v1/datasets/shop/active?per=2&min-ps=3&min-rec=2&at=3", "");
    assert_eq!(warm.header("x-rpm-cache"), "hit");
    assert_eq!(warm.body, active.body);
    let mine = request(addr, "POST", "/v1/datasets/shop/mine?per=2&min-ps=3&min-rec=2", "");
    assert_eq!(mine.header("x-rpm-cache"), "hit");

    // Range form, and parameter validation.
    let range =
        request(addr, "GET", "/v1/datasets/shop/active?per=2&min-ps=3&min-rec=2&from=1&to=14", "");
    assert_eq!(range.status, 200);
    assert_eq!(range.header("x-rpm-active"), "8", "whole span touches every pattern");
    let missing = request(addr, "GET", "/v1/datasets/shop/active?per=2&min-ps=3&min-rec=2", "");
    assert_eq!(missing.status, 400);
    assert!(missing.body.contains("at=ts"), "{}", missing.body);

    handle.shutdown();
    handle.join();
}

#[test]
fn deadline_yields_a_sound_partial_206() {
    let handle = bind(2, 16);
    let addr = handle.addr();
    // 10 items → 1023 candidate itemsets, all of them patterns.
    let up = request(addr, "POST", "/v1/datasets/dense", &dense_db_text(10, 30));
    assert_eq!(up.status, 201, "{}", up.body);

    // A zero deadline trips at the engine's first probe: 206, the abort
    // reason in a header, and whatever prefix was mined in the body.
    let partial =
        request(addr, "POST", "/v1/datasets/dense/mine?per=2&min-ps=3&min-rec=1&timeout=0ms", "");
    assert_eq!(partial.status, 206, "{}", partial.body);
    assert_eq!(partial.header("x-rpm-abort"), "deadline exceeded");
    assert_eq!(partial.header("x-rpm-cache"), "miss");

    // Partial results are never cached…
    let retry = request(addr, "POST", "/v1/datasets/dense/mine?per=2&min-ps=3&min-rec=1", "");
    assert_eq!(retry.status, 200, "{}", retry.body);
    assert_eq!(retry.header("x-rpm-cache"), "miss", "the 206 must not have been cached");
    assert_eq!(retry.header("x-rpm-patterns"), "1023");

    // …and the partial is sound: every line of it appears verbatim in the
    // complete result.
    let complete: std::collections::HashSet<&str> = retry.body.lines().collect();
    for line in partial.body.lines() {
        assert!(complete.contains(line), "unsound partial line: {line}");
    }
    assert!(partial.body.lines().count() < 1023, "deadline actually cut the run short");

    handle.shutdown();
    handle.join();
}

#[test]
fn full_queue_gets_backpressure_503() {
    // One worker, one waiting slot. Connection A occupies the worker (its
    // request head is deliberately unfinished), B fills the queue, so C
    // must be rejected by the acceptor without queueing.
    let handle = bind(1, 1);
    let addr = handle.addr();

    let mut conn_a = TcpStream::connect(addr).unwrap();
    conn_a.write_all(b"GET /v1/healthz HTTP/1.1\r\n").unwrap(); // head unfinished
    #[allow(clippy::disallowed_methods)] // test choreography
    std::thread::sleep(Duration::from_millis(150)); // worker picks A up, blocks reading
    let mut conn_b = TcpStream::connect(addr).unwrap();
    conn_b.write_all(b"GET /v1/healthz HTTP/1.1\r\n").unwrap();
    #[allow(clippy::disallowed_methods)] // test choreography
    std::thread::sleep(Duration::from_millis(150)); // B sits in the queue

    let rejected = parse_response(&send_raw(addr, "GET /v1/healthz HTTP/1.1\r\n\r\n"));
    assert_eq!(rejected.status, 503, "{}", rejected.body);
    assert!(rejected.body.contains("queue full"), "{}", rejected.body);
    let metrics_raw = {
        // The worker is still busy with A; finish A first so the pool can
        // serve B and then our metrics request.
        conn_a.write_all(b"\r\n").unwrap();
        let mut out = String::new();
        conn_a.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200"), "A completed normally: {out}");
        conn_b.write_all(b"\r\n").unwrap();
        let mut out = String::new();
        conn_b.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200"), "B completed normally: {out}");
        send_raw(addr, "GET /v1/metrics HTTP/1.1\r\n\r\n")
    };
    let metrics = parse_response(&metrics_raw);
    assert!(metrics.counter("rejected_backpressure") >= 1, "{}", metrics.body);

    handle.shutdown();
    handle.join();
}

#[test]
fn graceful_shutdown_drains_in_flight_mining_as_complete_responses() {
    let handle = bind(2, 16);
    let addr = handle.addr();
    // 24 items → ~16.7M candidate itemsets: minutes of mining, so the
    // cancellation token is what ends the run. The 30s timeout is only a
    // backstop so a broken shutdown path cannot hang the suite.
    let up = request(addr, "POST", "/v1/datasets/huge", &dense_db_text(24, 48));
    assert_eq!(up.status, 201, "{}", up.body);

    let miner = std::thread::spawn(move || {
        request(addr, "POST", "/v1/datasets/huge/mine?per=2&min-ps=3&min-rec=1&timeout=30s", "")
    });
    // Let the mine get going, then pull the plug.
    #[allow(clippy::disallowed_methods)] // test choreography
    std::thread::sleep(Duration::from_millis(120));
    let bye = request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(bye.status, 200, "{}", bye.body);

    // The in-flight request drains as a *complete* response (parse_response
    // asserts body == Content-Length): a sound partial, tagged cancelled.
    let response = miner.join().expect("mining request thread");
    assert_eq!(response.status, 206, "{}", response.body);
    assert_eq!(response.header("x-rpm-abort"), "cancelled");

    handle.join();
    assert!(TcpStream::connect(addr).is_err(), "listener closed after drain");
}

#[test]
fn unknown_routes_datasets_and_params_error_cleanly() {
    let handle = bind(1, 4);
    let addr = handle.addr();

    let ghost = request(addr, "GET", "/v1/datasets/ghost/active?per=2&min-ps=3&at=1", "");
    assert_eq!(ghost.status, 404);
    assert!(ghost.body.contains("\"code\":\"not_found\""), "{}", ghost.body);
    assert_eq!(request(addr, "POST", "/v1/datasets/ghost/mine?per=2&min-ps=3", "").status, 404);
    assert_eq!(request(addr, "POST", "/v1/datasets/ghost/append", "1\ta\n").status, 404);
    assert_eq!(request(addr, "GET", "/totally/unknown", "").status, 404);
    let bad_method = request(addr, "DELETE", "/v1/metrics", "");
    assert_eq!(bad_method.status, 405);
    assert!(bad_method.body.contains("\"code\":\"method_not_allowed\""), "{}", bad_method.body);

    let up = request(addr, "POST", "/v1/datasets/d", &running_example_text());
    assert_eq!(up.status, 201);
    let dup = request(addr, "POST", "/v1/datasets/d", &running_example_text());
    assert_eq!(dup.status, 409);
    assert!(dup.body.contains("\"code\":\"conflict\""), "{}", dup.body);
    assert!(dup.body.contains("replace=true"), "{}", dup.body);
    // Explicit replacement is the sanctioned way past the conflict.
    let replaced = request(addr, "POST", "/v1/datasets/d?replace=true", &running_example_text());
    assert_eq!(replaced.status, 201, "{}", replaced.body);
    assert_eq!(
        request(addr, "POST", "/v1/datasets/d?replace=maybe", &running_example_text()).status,
        400
    );
    assert_eq!(
        request(addr, "POST", "/v1/datasets/bad%20name%21", &running_example_text()).status,
        400
    );

    let no_per = request(addr, "POST", "/v1/datasets/d/mine?min-ps=3", "");
    assert_eq!(no_per.status, 400);
    assert!(no_per.body.contains("per"), "{}", no_per.body);
    assert!(no_per.body.contains("\"code\":\"bad_request\""), "{}", no_per.body);
    let bad_timeout =
        request(addr, "POST", "/v1/datasets/d/mine?per=2&min-ps=3&timeout=1e300h", "");
    assert_eq!(bad_timeout.status, 400);
    assert!(bad_timeout.body.contains("invalid parameters"), "{}", bad_timeout.body);
    let bad_ps = request(addr, "POST", "/v1/datasets/d/mine?per=2&min-ps=200%25", "");
    assert_eq!(bad_ps.status, 400, "{}", bad_ps.body);

    handle.shutdown();
    handle.join();
}

#[test]
fn legacy_unversioned_paths_alias_v1_with_a_deprecation_header() {
    let handle = bind(1, 4);
    let addr = handle.addr();

    let up = request(addr, "POST", "/datasets/old", &running_example_text());
    assert_eq!(up.status, 201, "{}", up.body);
    assert_eq!(up.header("deprecation"), "true");
    assert!(up.header("link").contains("successor-version"), "{}", up.header("link"));

    let mined_old = request(addr, "POST", "/datasets/old/mine?per=2&min-ps=3&min-rec=2", "");
    let mined_new = request(addr, "POST", "/v1/datasets/old/mine?per=2&min-ps=3&min-rec=2", "");
    assert_eq!(mined_old.status, 200, "{}", mined_old.body);
    assert_eq!(mined_new.status, 200, "{}", mined_new.body);
    assert_eq!(mined_old.body, mined_new.body, "alias and /v1 serve identical results");
    assert_eq!(mined_old.header("deprecation"), "true");
    assert_eq!(mined_new.header("deprecation"), "", "versioned path is not deprecated");

    // Errors on the legacy surface still use the uniform envelope.
    let missing = request(addr, "GET", "/datasets/ghost/active?per=2&min-ps=3&at=1", "");
    assert_eq!(missing.status, 404);
    assert!(missing.body.contains("\"code\":\"not_found\""), "{}", missing.body);
    assert_eq!(missing.header("deprecation"), "true");

    handle.shutdown();
    handle.join();
}

#[test]
fn legacy_alias_errors_keep_the_envelope_and_deprecation_headers() {
    let handle = bind(1, 4);
    let addr = handle.addr();
    assert_eq!(request(addr, "POST", "/datasets/shop", &running_example_text()).status, 201);

    // 404: unknown dataset through the alias — envelope + both alias headers.
    let missing = request(addr, "POST", "/datasets/ghost/mine?per=2&min-ps=3", "");
    assert_eq!(missing.status, 404, "{}", missing.body);
    assert!(missing.body.contains("\"error\":{\"code\":\"not_found\""), "{}", missing.body);
    assert!(missing.body.contains("\"message\":"), "{}", missing.body);
    assert_eq!(missing.header("deprecation"), "true");
    assert_eq!(missing.header("link"), "</v1>; rel=\"successor-version\"");

    // 409: duplicate registration through the alias.
    let dup = request(addr, "POST", "/datasets/shop", &running_example_text());
    assert_eq!(dup.status, 409, "{}", dup.body);
    assert!(dup.body.contains("\"error\":{\"code\":\"conflict\""), "{}", dup.body);
    assert_eq!(dup.header("deprecation"), "true");
    assert_eq!(dup.header("link"), "</v1>; rel=\"successor-version\"");

    // 405: wrong method on a known alias route.
    let wrong = request(addr, "DELETE", "/datasets", "");
    assert_eq!(wrong.status, 405, "{}", wrong.body);
    assert!(wrong.body.contains("\"error\":{\"code\":\"method_not_allowed\""), "{}", wrong.body);
    assert_eq!(wrong.header("deprecation"), "true");

    // 413: an oversized declared body is refused before routing, so the
    // envelope survives but the alias headers do not — the rejection is
    // transport-level, not a route answer.
    let huge = send_raw(
        addr,
        "POST /datasets/shop/append HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
    );
    let huge = parse_response(&huge);
    assert_eq!(huge.status, 413, "{}", huge.body);
    assert!(huge.body.contains("\"error\":{\"code\":\"payload_too_large\""), "{}", huge.body);

    handle.shutdown();
    handle.join();
}
