//! Numeric telemetry: discretise raw sensor signals into symbolic events
//! and mine the recurring co-movements — bridging the paper's symbolic
//! model to the numeric time series its related work (§2) studies.
//!
//! Two signals are synthesised over a fortnight of minutes: CPU load (a
//! diurnal sine) and fan speed (tracks load, but only while a thermal
//! controller is engaged — which happens during two heatwave weeks).
//! After SAX-style discretisation, the *recurring* pattern
//! `{cpu:high, fan:high}` appears exactly in the heatwave windows.
//!
//! ```text
//! cargo run --release --example numeric_sensors
//! ```

#![deny(deprecated)]

use recurring_patterns::core::summarize;
use recurring_patterns::prelude::*;
use recurring_patterns::timeseries::{Binning, Discretizer};

const MINUTES: i64 = 14 * 1440;

fn main() {
    // Synthesise the signals.
    let timestamps: Vec<Timestamp> = (0..MINUTES).collect();
    let cpu: Vec<f64> = timestamps
        .iter()
        .map(|&t| {
            let phase = (t % 1440) as f64 / 1440.0 * std::f64::consts::TAU;
            50.0 - 30.0 * phase.cos() + ((t * 2654435761) % 7) as f64 // daily swing + hash noise
        })
        .collect();
    // Heatwaves: days 2..5 and 9..12 — the controller couples fan to load.
    let heat = |t: i64| {
        let d = t / 1440;
        (2..5).contains(&d) || (9..12).contains(&d)
    };
    let fan: Vec<f64> = timestamps
        .iter()
        .map(|&t| if heat(t) { cpu[t as usize] * 40.0 } else { 800.0 + ((t * 31) % 11) as f64 })
        .collect();

    // Discretise into 3 Gaussian bands per signal.
    let d = Discretizer::new(3, Binning::Gaussian);
    let db = d.discretize(&timestamps, &[("cpu", cpu), ("fan", fan)]);
    println!(
        "discretised {} minutes into {} transactions over {} items: {:?}",
        MINUTES,
        db.len(),
        db.item_count(),
        db.items().iter().map(|i| i.label).collect::<Vec<_>>()
    );

    // Mine: per = 1000 min bridges the nightly low period inside a heatwave
    // (≈ 860 min) but not the gap between heatwaves (≈ 4 days); minPS = 1000
    // demands a sustained multi-day coupling; minRec = 2 demands recurrence.
    let params = RpParams::new(1000, 1000, 2);
    let result = RpGrowth::new(params).mine(&db);
    println!("\n{}", summarize(&result.patterns));
    println!("\nrecurring co-movements (pairs only):");
    for p in result.patterns.iter().filter(|p| p.len() == 2) {
        println!("  {}", p.display(db.items()));
    }

    // The coupled high-band pair must recur exactly twice, in the heatwaves.
    let pair = {
        let mut v = db.pattern_ids(&["cpu:L2", "fan:L2"]).expect("bands exist");
        v.sort_unstable();
        v
    };
    let coupled =
        result.patterns.iter().find(|p| p.items == pair).expect("{cpu:L2, fan:L2} is recurring");
    assert_eq!(coupled.recurrence(), 2, "one interval per heatwave");
    for iv in &coupled.intervals {
        let days = (iv.start / 1440, iv.end / 1440);
        println!(
            "\nheatwave coupling day {} → day {} ({} high-high minutes)",
            days.0, days.1, iv.periodic_support
        );
        assert!(heat(iv.start) && heat(iv.end), "interval inside a heatwave");
    }
    // Off the heatwaves, fan:high still happens (its own band) but never
    // periodically *with* cpu:high — verify via the raw database.
    let resolved = RpParams::new(1000, 1000, 2).resolve(db.len());
    verify_pattern(&db, coupled, resolved).expect("verifies against raw data");
    println!("\nverified against the raw discretised database ✓");
}
