//! Quickstart: mine the paper's running example (Table 1) and print its
//! recurring patterns (Table 2).
//!
//! ```text
//! cargo run --example quickstart
//! ```

#![deny(deprecated)]

use recurring_patterns::prelude::*;

fn main() {
    // Table 1 of the paper: a time-based sequence over items a..g, grouped
    // into a temporally ordered transactional database. Timestamps 8 and 13
    // carry no events and therefore no transaction.
    let rows: [(Timestamp, &[&str]); 12] = [
        (1, &["a", "b", "g"]),
        (2, &["a", "c", "d"]),
        (3, &["a", "b", "e", "f"]),
        (4, &["a", "b", "c", "d"]),
        (5, &["c", "d", "e", "f", "g"]),
        (6, &["e", "f", "g"]),
        (7, &["a", "b", "c", "g"]),
        (9, &["c", "d"]),
        (10, &["c", "d", "e", "f"]),
        (11, &["a", "b", "e", "f"]),
        (12, &["a", "b", "c", "d", "e", "f", "g"]),
        (14, &["a", "b", "g"]),
    ];
    let mut builder = TransactionDb::builder();
    for (ts, items) in rows {
        builder.add_labeled(ts, items);
    }
    let db = builder.build();
    println!("database: {} transactions, {} items", db.len(), db.item_count());

    // The paper's example parameters: per=2, minPS=3, minRec=2 — a pattern
    // must appear with gaps of at most 2, at least 3 times in a row, in at
    // least 2 distinct stretches.
    let params = RpParams::new(2, 3, 2);
    println!("mining with {params}\n");
    let result = RpGrowth::new(params).mine(&db);

    println!("recurring patterns (expected: Table 2 of the paper):");
    for pattern in &result.patterns {
        println!("  {}", pattern.display(db.items()));
    }

    // The pruning statistics show how the Erec bound shrinks the search.
    let s = &result.stats;
    println!(
        "\nstats: {} of {} items were candidates; {} suffixes checked, \
         {} recurrence-tested, {} patterns",
        s.candidate_items,
        s.scanned_items,
        s.candidates_checked,
        s.recurrence_tests,
        s.patterns_found
    );

    // Every reported pattern can be re-verified against the raw database.
    let resolved = RpParams::new(2, 3, 2).resolve(db.len());
    verify_all(&db, &result.patterns, resolved).expect("all patterns verify");
    println!("all patterns verified against the raw database ✓");
}
