//! Network monitoring: separate rare cascading-failure episodes from
//! regular maintenance chatter — the paper's computer-network motivation
//! ("an administrator may be interested in finding high severity events
//! (e.g. cascading failure) against regular routine events (e.g. data
//! backup)", §1).
//!
//! A synthetic syslog is built inline: a nightly backup heartbeat (regular,
//! periodic throughout), steady telemetry noise, and two cascading-failure
//! episodes where `link-flap`, `bgp-reset` and `packet-loss` fire together
//! every few minutes for a couple of hours. Periodic-frequent mining sees
//! only the heartbeat; recurring-pattern mining isolates the cascades with
//! their exact time windows.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

#![deny(deprecated)]

use recurring_patterns::prelude::*;
use recurring_patterns::timeseries::Pcg32;

const DAYS: i64 = 14;
const MIN_PER_DAY: i64 = 1440;

fn build_syslog() -> TransactionDb {
    let mut rng = Pcg32::seed_from_u64(0xC0FFEE);
    let mut b = TransactionDb::builder();
    let total = DAYS * MIN_PER_DAY;
    // Two cascading-failure episodes: day 4, 02:10–04:30 and day 11,
    // 22:40–23:59+ (spilling into day 12).
    let cascades = [
        (4 * MIN_PER_DAY + 130, 4 * MIN_PER_DAY + 270),
        (11 * MIN_PER_DAY + 1360, 12 * MIN_PER_DAY + 90),
    ];
    for ts in 0..total {
        let mut events: Vec<&str> = Vec::new();
        // Telemetry heartbeat every minute (keeps the series dense).
        events.push("telemetry");
        // Nightly backup window 01:00–01:30 each day: the regular pattern.
        let mod_day = ts % MIN_PER_DAY;
        if (60..=90).contains(&mod_day) {
            events.push("backup-job");
            events.push("disk-io-high");
        }
        // Sporadic benign noise.
        if rng.random_f64() < 0.05 {
            events.push("dhcp-lease");
        }
        if rng.random_f64() < 0.02 {
            events.push("ntp-sync");
        }
        // Cascading failures: the three alarms co-fire every ~3 minutes
        // inside an episode, and essentially never outside.
        if cascades.iter().any(|&(s, e)| ts >= s && ts <= e) {
            if rng.random_f64() < 0.4 {
                events.push("link-flap");
                events.push("bgp-reset");
                events.push("packet-loss");
            }
        } else if rng.random_f64() < 0.0005 {
            events.push("link-flap"); // lone flaps happen rarely anyway
        }
        b.add_labeled(ts, &events);
    }
    b.build()
}

fn main() {
    let db = build_syslog();
    println!("syslog: {} minute-transactions, {} event types\n", db.len(), db.item_count());

    // Periodic-frequent view (regular patterns): demands periodicity across
    // the WHOLE fortnight — only the always-on/daily machinery qualifies.
    let (pf, _) = PfGrowth::new(PfParams::new(1440, Threshold::pct(1.0))).mine(&db);
    println!("periodic-frequent patterns (maxPer=1 day, minSup=1%):");
    for p in &pf {
        println!(
            "  {} sup={} per={}",
            db.items().pattern_string(&p.items),
            p.support,
            p.periodicity
        );
    }
    let cascade_ids = {
        let mut v =
            db.pattern_ids(&["link-flap", "bgp-reset", "packet-loss"]).expect("alarm types exist");
        v.sort_unstable();
        v
    };
    assert!(
        !pf.iter().any(|p| p.items == cascade_ids),
        "cascades are invisible to whole-series periodicity"
    );

    // Recurring view: periodic for >= 30 consecutive alarms within 15-minute
    // gaps, anywhere, at least twice.
    let params = RpParams::new(15, 30, 2);
    let result = RpGrowth::new(params).mine(&db);
    println!("\nrecurring patterns (per=15, minPS=30, minRec=2):");
    for p in &result.patterns {
        println!("  {}", p.display(db.items()));
    }
    let cascade = result
        .patterns
        .iter()
        .find(|p| p.items == cascade_ids)
        .expect("the cascading-failure triple must be recovered");
    println!("\ncascading failure recovered with {} episodes:", cascade.recurrence());
    for iv in &cascade.intervals {
        let (day_s, m_s) = (iv.start / MIN_PER_DAY, iv.start % MIN_PER_DAY);
        let (day_e, m_e) = (iv.end / MIN_PER_DAY, iv.end % MIN_PER_DAY);
        println!(
            "  day {day_s} {:02}:{:02} → day {day_e} {:02}:{:02} ({} alarms)",
            m_s / 60,
            m_s % 60,
            m_e / 60,
            m_e % 60,
            iv.periodic_support
        );
    }
    assert_eq!(cascade.recurrence(), 2, "both planted episodes are found");
}
