//! Hashtag bursts: recover real-world-style events (floods, elections, a
//! tornado, nuclear anxiety) from a simulated Twitter stream — the paper's
//! social-network motivation and its Table 6 / Figure 8 analysis.
//!
//! ```text
//! cargo run --release --example hashtag_bursts
//! ```

#![deny(deprecated)]

use recurring_patterns::datagen::calendar::date_label;
use recurring_patterns::prelude::*;

const SCALE: f64 = 0.15;

fn main() {
    let config = TwitterConfig { scale: SCALE, seed: 3, ..TwitterConfig::default() };
    let stream = generate_twitter(&config);
    let db = &stream.db;
    println!("hashtag stream: {} minute-transactions, {} hashtags\n", db.len(), db.item_count());

    // The paper's Table 6 parameters: per = 6h, minPS = 2%, minRec = 1.
    let params = RpParams::with_threshold(360, Threshold::pct(2.0), 1);
    let result = RpGrowth::new(params).mine(db);
    println!("{} recurring patterns at per=360, minPS=2%, minRec=1\n", result.patterns.len());

    println!("planted events and their discovered periodic durations:");
    for planted in &stream.planted {
        let labels: Vec<&str> = planted.labels.iter().map(String::as_str).collect();
        let mut ids = db.pattern_ids(&labels).expect("tags interned");
        ids.sort_unstable();
        match result.patterns.iter().find(|p| p.items == ids) {
            Some(p) => {
                let spans: Vec<String> = p
                    .intervals
                    .iter()
                    .map(|iv| {
                        // Map compressed stream minutes back to 2013 dates.
                        let s = (iv.start as f64 / SCALE) as Timestamp;
                        let e = (iv.end as f64 / SCALE) as Timestamp;
                        format!("{}..{}", date_label(s, 5, 1), date_label(e, 5, 1))
                    })
                    .collect();
                println!(
                    "  {:<12} {{{}}}: sup={} rec={} {}",
                    planted.name,
                    planted.labels.join(","),
                    p.support,
                    p.recurrence(),
                    spans.join(" and ")
                );
            }
            None => println!("  {:<12} NOT FOUND", planted.name),
        }
    }

    let report = evaluate_recovery(db, &stream.planted, &result.patterns);
    println!(
        "\nrecovery: pattern recall {:.0}%, window recall {:.0}%",
        report.pattern_recall() * 100.0,
        report.window_recall() * 100.0
    );
    assert_eq!(report.pattern_recall(), 1.0, "all planted events must be recovered");

    // The nuclear event recurs (two windows) — raise minRec to isolate it.
    let recurring_only =
        RpGrowth::new(RpParams::with_threshold(360, Threshold::pct(2.0), 2)).mine(db);
    let nuclear = db.pattern_ids(&["#hibaku", "#nuclear"]).map(|mut v| {
        v.sort_unstable();
        v
    });
    let found =
        nuclear.as_ref().is_some_and(|ids| recurring_only.patterns.iter().any(|p| &p.items == ids));
    println!(
        "minRec=2 keeps only multi-window events: {} patterns, nuclear included: {found}",
        recurring_only.patterns.len()
    );
}
