//! Parameter tuning: how to choose `per`, `minPS` and `minRec` for an
//! unfamiliar dataset using the library's exploration tools — the question
//! every new user of the model asks first (the paper itself sweeps a 3×3×3
//! grid, Table 4).
//!
//! The workflow demonstrated:
//! 1. look at the database's gap structure (`DbStats`);
//! 2. pick a probe item and read its **recurrence spectrum** — the exact
//!    step function `per ↦ Rec` — to find the plateau between "splitting on
//!    every lull" and "one merged blob";
//! 3. sweep `minPS` at the chosen `per` and watch the output size and
//!    summary;
//! 4. confirm with `minRec = 2` that what remains is genuinely seasonal.
//!
//! ```text
//! cargo run --release --example parameter_tuning
//! ```

#![deny(deprecated)]

use recurring_patterns::core::{recurrence_spectrum, summarize};
use recurring_patterns::prelude::*;
use recurring_patterns::timeseries::DbStats;

fn main() {
    let stream = generate_clickstream(&ShopConfig { scale: 0.2, seed: 42, ..Default::default() });
    let db = &stream.db;

    // Step 1: the data's own time structure.
    let stats = DbStats::compute(db);
    println!("step 1 — database shape:\n{stats}\n");
    println!(
        "mean gap {:.1} min, max gap {} min ⇒ candidate per values sit between\n",
        stats.avg_gap, stats.max_gap
    );

    // Step 2: spectrum of a probe pattern (the head category).
    let probe = stats.top_items[0].0.clone();
    let probe_id = db.items().id(&probe).expect("head item");
    let ts = db.timestamps_of(&[probe_id]);
    let min_ps = (db.len() / 300).max(2);
    let spectrum = recurrence_spectrum(&ts, min_ps);
    println!("step 2 — recurrence spectrum of {{{probe}}} at minPS={min_ps}:");
    println!("  per → Rec (only change points shown)");
    for step in spectrum.iter().take(12) {
        println!("  {:>5} → {}", step.per, step.interesting);
    }
    let best = spectrum.iter().max_by_key(|s| s.interesting).expect("non-empty spectrum");
    println!(
        "  peak Rec = {} at per = {} — below it runs shatter, far above they merge\n",
        best.interesting, best.per
    );
    let per = best.per.max(30);

    // Step 3: minPS sweep at the chosen per.
    println!("step 3 — minPS sweep at per={per}:");
    let mut chosen_min_ps = min_ps;
    for factor in [1usize, 2, 4, 8] {
        let candidate = min_ps * factor;
        let result = RpGrowth::new(RpParams::new(per, candidate, 1)).mine(db);
        let s = summarize(&result.patterns);
        println!("  minPS={candidate:<4} → {s}");
        if result.patterns.len() < 500 {
            chosen_min_ps = candidate;
            break;
        }
        chosen_min_ps = candidate;
    }

    // Step 4: demand recurrence.
    let seasonal = RpGrowth::new(RpParams::new(per, chosen_min_ps, 2)).mine(db);
    println!("\nstep 4 — minRec=2 keeps {} genuinely seasonal patterns:", seasonal.patterns.len());
    for p in seasonal.patterns.iter().filter(|p| p.len() >= 2).take(5) {
        println!("  {}", p.display(db.items()));
    }

    // The planted campaign should be among them at sane choices.
    let campaign = {
        let mut v = db.pattern_ids(&["cat-sale", "cat-checkout"]).unwrap();
        v.sort_unstable();
        v
    };
    let found = seasonal.patterns.iter().any(|p| p.items == campaign);
    println!("\nplanted campaign recovered by the tuned parameters: {found}");
    assert!(found, "tuning workflow must land on parameters that see the campaign");
}
