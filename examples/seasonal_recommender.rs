//! Seasonal recommender: turn recurring patterns into time-scoped
//! association rules — the paper's closing future-work item ("extending our
//! model to improve the performance of an association rule-based
//! recommender system", §6).
//!
//! Classic rules fire year-round; rules derived from recurring patterns
//! carry the periodic-intervals they are valid in, so the recommender can
//! suggest gloves with jackets *in winter only*. The example mines a
//! simulated store, condenses the output to closed patterns, derives rules,
//! and answers "what should we recommend alongside X right now?" for
//! timestamps inside and outside the season.
//!
//! ```text
//! cargo run --release --example seasonal_recommender
//! ```

#![deny(deprecated)]

use recurring_patterns::prelude::*;

fn main() {
    let stream = generate_clickstream(&ShopConfig { scale: 0.2, seed: 7, ..Default::default() });
    let db = &stream.db;

    // Mine seasonal associations and condense the redundancy away.
    let params = RpParams::with_threshold(360, Threshold::pct(0.3), 1);
    let mined = RpGrowth::new(params).mine(db);
    let closed = closed_patterns(&mined.patterns);
    println!(
        "mined {} recurring patterns, {} closed ({}% condensation)\n",
        mined.patterns.len(),
        closed.len(),
        100 - 100 * closed.len() / mined.patterns.len().max(1)
    );

    // Rules with their validity seasons.
    let (rules, skipped) = generate_rules(db, &closed, 0.6);
    assert_eq!(skipped, 0);
    println!("{} rules at confidence >= 0.6; strongest five:", rules.len());
    for r in rules.iter().take(5) {
        println!("  {}", r.display(db.items()));
    }

    // The planted campaign pair must appear as a seasonal rule.
    let sale = db.items().id("cat-sale").expect("planted");
    let checkout = db.items().id("cat-checkout").expect("planted");
    let campaign_rule = rules
        .iter()
        .find(|r| r.antecedent == vec![sale] && r.consequent == vec![checkout])
        .expect("campaign rule discovered");
    println!("\ncampaign rule: {}", campaign_rule.display(db.items()));

    // Time-scoped recommendation: only recommend inside a validity season.
    let recommend = |ts: Timestamp| -> Vec<String> {
        rules
            .iter()
            .filter(|r| {
                r.antecedent == vec![sale]
                    && r.intervals.iter().any(|iv| iv.start <= ts && ts <= iv.end)
            })
            .map(|r| db.items().pattern_string(&r.consequent))
            .collect()
    };
    let in_season = campaign_rule.intervals[0].start + 10;
    let off_season = campaign_rule.intervals[0].end
        + (campaign_rule.intervals.get(1).map_or(10_000, |iv| iv.start)
            - campaign_rule.intervals[0].end)
            / 2;
    println!(
        "\nbasket [cat-sale] at ts {in_season} (in season)  → recommend {:?}",
        recommend(in_season)
    );
    println!(
        "basket [cat-sale] at ts {off_season} (off season) → recommend {:?}",
        recommend(off_season)
    );
    assert!(!recommend(in_season).is_empty());
    assert!(recommend(off_season).is_empty());

    // Sanity: the rule's seasons coincide with the planted campaign windows.
    let planted = &stream.planted[0];
    for (iv, (ws, we)) in campaign_rule.intervals.iter().zip(&planted.windows) {
        let iou = {
            let inter = (iv.end.min(*we) - iv.start.max(*ws)).max(0) as f64;
            let union = (iv.end.max(*we) - iv.start.min(*ws)) as f64;
            inter / union
        };
        assert!(iou > 0.9, "season drifted from planted window: IoU {iou:.2}");
    }
    println!("\nrule seasons match the planted campaign windows ✓");
}
