//! Retail seasonality: find seasonal purchase associations in a simulated
//! store clickstream — the paper's inventory-management motivation ("a user
//! may be interested in determining seasonal purchases for efficient
//! inventory management", §1).
//!
//! The simulator plants (i) a two-window seasonal campaign and (ii) a
//! one-window flash sale on otherwise-rare categories. `minRec = 2` isolates
//! genuinely *seasonal* behaviour; the flash sale only surfaces at
//! `minRec = 1` — and would be invisible to a support-threshold miner tuned
//! for frequent categories (the rare-item problem).
//!
//! ```text
//! cargo run --release --example retail_seasonality
//! ```

#![deny(deprecated)]

use recurring_patterns::prelude::*;

fn main() {
    let config = ShopConfig { scale: 0.2, seed: 7, ..ShopConfig::default() };
    let stream = generate_clickstream(&config);
    let db = &stream.db;
    println!("clickstream: {} minute-transactions, {} categories\n", db.len(), db.item_count());

    // Seasonal associations: periodic stretches of >= 0.3% of the stream,
    // recurring in at least TWO separate seasons.
    let seasonal = RpParams::with_threshold(360, Threshold::pct(0.3), 2);
    let result = RpGrowth::new(seasonal.clone()).mine(db);
    println!("== seasonal (minRec=2) — {} patterns", result.patterns.len());
    for p in result.patterns.iter().filter(|p| p.len() >= 2).take(10) {
        println!("  {}", p.display(db.items()));
    }

    // The planted campaign must be among them, with both windows.
    let report = evaluate_recovery(db, &stream.planted[..1], &result.patterns);
    let campaign = &report.per_pattern[0];
    println!(
        "\nplanted seasonal campaign: found={} windows {}/{} (mean IoU {:.2})",
        campaign.found, campaign.windows_matched, campaign.windows_total, campaign.mean_iou
    );
    assert!(campaign.found, "the seasonal campaign must be discovered at minRec=2");

    // The flash sale has only one window: invisible at minRec=2 …
    let flash_ids =
        db.pattern_ids(&["cat-flash", "cat-landing"]).expect("planted categories exist");
    let mut flash_sorted = flash_ids.clone();
    flash_sorted.sort_unstable();
    assert!(
        !result.patterns.iter().any(|p| p.items == flash_sorted),
        "one-off flash sale must NOT count as seasonal"
    );
    println!("flash sale correctly absent at minRec=2");

    // … but pops out at minRec=1.
    let one_off = RpParams::with_threshold(360, Threshold::pct(0.3), 1);
    let result1 = RpGrowth::new(one_off).mine(db);
    let flash = result1
        .patterns
        .iter()
        .find(|p| p.items == flash_sorted)
        .expect("flash sale discovered at minRec=1");
    println!("flash sale at minRec=1: {}", flash.display(db.items()));

    // Rare-item evidence: the flash categories are far below the head.
    let head_support = db.items().iter().map(|item| db.support(&[item.id])).max().unwrap_or(0);
    println!(
        "support: head category {} vs cat-flash {} — a single minSup could not serve both",
        head_support,
        db.support(&[flash_ids[0]])
    );
}
